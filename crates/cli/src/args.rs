//! Hand-rolled argument parsing (no CLI dependency).

/// Usage text.
pub const USAGE: &str = "\
cuts — trie-based subgraph isomorphism on a simulated multi-GPU system

USAGE:
  cuts stats   (<edgelist> | --dataset <name> [--scale <s>]) [--directed]
  cuts match   (<edgelist> | --dataset <name> [--scale <s>]) --query <spec>
               [--directed] [--device v100|a100|test] [--engine cuts|gsi|gunrock|vf2]
               [--ranks <n>] [--enumerate <n>] [--chunk <n>] [--plan-cache <n>]
               [--intersect auto|c|p|bitmap] [--no-prefilter]
               [--partition round-robin|block|all-to-zero]
               [--fault-plan <plan>] [--rank-timeout <ms>]
               [--trace-out <path>] [--trace-format chrome|jsonl]
               [--trace-per-block] [--metrics-out <path>]
  cuts profile (same options as match; cuts engine only) — runs with
               tracing on and prints a per-level / per-kernel breakdown
  cuts serve   --jobs <manifest> [--ranks <n>] [--devices <n>] [--lanes <k>]
               [--queue <n>] [--aging <ms>] [--pacing <f>]
               [--device v100|a100|test] [--output text|json]
               [--fault-plan <plan>] [--submit-timeout <ms>]
               [--snapshot <path>] [--stats-every <jobs>]
               [--stats-out <path>] [--metrics-out <path>] [--quick]
  cuts watch   (<edgelist> | --dataset <name> [--scale <s>]) --query <spec[,spec...]>
               --batches <file> [--ranks <n>] [--directed]
               [--device v100|a100|test] [--output text|json]
               [--fault-plan <plan>]
  cuts top     <metrics.jsonl> — renders the rolling snapshots a serve
               run wrote via --stats-every/--stats-out as a table
  cuts flight  <dump.json> — validates and summarises a flight-recorder
               post-mortem dump
  cuts snapshot build (<edgelist> | --dataset <name> [--scale <s>])
               --out <path> [--queries <spec,spec,...>] [--directed]
               [--device v100|a100|test] [--store-tries]
  cuts snapshot inspect <path>
  cuts queries [--n <vertices>] [--top <k>]
  cuts help

QUERY SPECS:   clique:K  chain:K  cycle:K  star:K  or a path to an edge list
DATASETS:      enron gowalla roadnet-pa roadnet-tx roadnet-ca wikitalk
SCALES:        tiny small medium paper (default tiny)
LABELS:        --labels random:K | zipf:K | bands  (attach vertex labels to
               both graphs; labelled matching requires label equality)
OUTPUT:        --output text | json (match subcommand)
PLAN CACHE:    --plan-cache <n> bounds the session's LRU of built query
               plans (default 16; 0 disables caching)
INTERSECT:     --intersect pins the intersection micro-kernel (c, p, or
               bitmap) or lets the plan-time policy pick per level from
               data-graph degree statistics (auto, the default);
               --no-prefilter disables the signature index that prunes
               root candidates before the degree test. Results are
               identical across all settings — only counters move
PARTITION:     how root candidates split across ranks (default round-robin;
               all-to-zero stresses the donation protocol)
TRACING:       --trace-out writes the run's event journal: chrome format
               loads in chrome://tracing or https://ui.perfetto.dev, jsonl
               is one event object per line; --trace-per-block adds one
               kernel span per simulated block on per-SM tracks;
               --metrics-out writes a Prometheus-style text snapshot
FAULT PLANS:   comma-separated clauses injected into the distributed run:
               crash:R@C panic:R@C drop:A->B@N delay:A->B@N+MS seed:S
               (requires --ranks > 1; --rank-timeout tunes failure detection)
SERVING:       --jobs is a manifest: one `<data> <query> [key=val...]` job
               per line (specs clique:K chain:K cycle:K star:K mesh:WxH
               er:N:M:SEED; options priority= deadline_ms= name= repeat=;
               `#` comments). serve drains it through the serving tier
               and a serial baseline, reporting throughput and p50/p99
               latency; --ranks spreads the stream over simulated
               multi-GPU ranks (placement by per-rank memory ledgers,
               idle ranks migrate whole jobs, a crashed rank's jobs are
               re-admitted by survivors); --fault-plan injects
               crash:R@C / panic:R@C mid-stream (needs --ranks > 1);
               --queue bounds admission, --submit-timeout bounds the wait
               for queue space (0 = fail fast; full queue exits 3 on
               busy, 4 on timeout), --aging tunes anti-starvation,
               --pacing stretches simulated time onto the host clock
MONITORING:    serving telemetry is always on: serve prints a per-class
               SLO table (queue/exec p50/p95/p99, deadline hit/miss) and
               --metrics-out writes the merged Prometheus exposition
               (job + kernel registries). --stats-every N emits a rolling
               JSON snapshot every N finished jobs — to stdout, or as
               JSON lines to --stats-out for `cuts top`. On a failed job,
               a dead rank, or any error escaping serve, the flight
               recorder dumps its last events to a post-mortem file
               (directory $CUTS_FLIGHT_DIR, default temp); inspect it
               with `cuts flight`
WATCHING:      `watch` serves standing queries over a live graph: each
               --query spec subscribes, then the --batches file streams
               edge edits. One edit per line — `+ u v` inserts, `- u v`
               deletes, `---` commits the batch (`#` comments; a final
               unterminated batch commits too). Each batch is matched
               incrementally (only trie subtrees near the edited
               vertices are re-expanded) and the per-query match deltas
               print as they stream; the final match sets are verified
               against a full recompute. --ranks replicates the live
               state for failover and --fault-plan kills ranks on batch
               boundaries (crash:R@C = rank R dies before its (C+1)-th
               batch; needs --ranks > 1); the delta stream continues
               from a surviving rank. The SLO table covers per-delta
               latencies under class watch/q<i>
SNAPSHOTS:     `snapshot build` profiles a data graph, plans each --queries
               spec, and writes a versioned, checksummed container;
               --store-tries additionally runs each query and persists its
               CSF result trie. `snapshot inspect` verifies every checksum
               and prints the section table. `match --snapshot <path>` and
               `serve --snapshot <path>` warm-start from a container: the
               graph and its profile come from the file (no ingestion, no
               re-profiling) and persisted plans seed the plan cache, so
               repeat queries run with zero plan builds. Plans transfer
               only when the engine flags and --device match the ones used
               at build time; others are re-planned on first sight";

/// Where the data graph comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DataSource {
    /// Load from a SNAP edge-list file.
    File(String),
    /// Generate a named stand-in at a scale.
    Dataset { name: String, scale: String },
    /// Restore from a snapshot container (`--snapshot <path>`): graph,
    /// profile, and cached plans all come from the file.
    Snapshot(String),
}

/// Parsed `match` options.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOpts {
    pub data: DataSource,
    pub query: String,
    pub directed: bool,
    pub device: String,
    pub engine: String,
    pub ranks: usize,
    pub enumerate: usize,
    pub chunk: usize,
    pub labels: Option<String>,
    pub output: String,
    /// Plan-cache capacity of the execution session (0 disables).
    pub plan_cache: usize,
    /// Fault schedule for the distributed runtime (text schema of
    /// `cuts_dist::FaultPlan::parse`).
    pub fault_plan: Option<String>,
    /// Failure-detection timeout in milliseconds.
    pub rank_timeout_ms: Option<u64>,
    /// Root-candidate partition strategy for distributed runs.
    pub partition: Option<String>,
    /// Write the run's event journal here.
    pub trace_out: Option<String>,
    /// Journal format: `chrome` (trace_event JSON) or `jsonl`.
    pub trace_format: String,
    /// Emit one kernel span per simulated block (per-SM tracks).
    pub trace_per_block: bool,
    /// Write a Prometheus-style metrics snapshot here.
    pub metrics_out: Option<String>,
    /// Intersection micro-kernel: `auto`, `c`, `p`, or `bitmap`.
    pub intersect: String,
    /// Disable the signature prefilter on root candidates.
    pub no_prefilter: bool,
}

/// Parsed `serve` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOpts {
    /// Path to the job manifest.
    pub jobs: String,
    /// Simulated multi-GPU ranks the stream is routed across.
    pub ranks: usize,
    /// Simulated devices to schedule across (per rank when --ranks > 1).
    pub devices: usize,
    /// Worker lanes per device.
    pub lanes: usize,
    /// Bounded submission-queue capacity.
    pub queue: usize,
    /// Aging constant in milliseconds (anti-starvation).
    pub aging_ms: u64,
    /// Host pacing factor (sleep `sim_millis × pacing` per job).
    pub pacing: f64,
    /// Device model name (v100|a100|test).
    pub device: String,
    /// Report format: text | json.
    pub output: String,
    /// Warm-start container: every job's data graph is replaced by the
    /// snapshot's graph and persisted plans seed each worker session.
    pub snapshot: Option<String>,
    /// Emit a rolling stats snapshot every N finished jobs (0 = off).
    pub stats_every: u64,
    /// Where rolling snapshots go, one JSON line each (stdout when
    /// unset). Feed the file to `cuts top`.
    pub stats_out: Option<String>,
    /// Write the merged Prometheus exposition (job SLO + kernel
    /// registries) here after the run.
    pub metrics_out: Option<String>,
    /// Fault schedule injected mid-stream (text schema of
    /// `FaultPlan::parse`); requires --ranks > 1.
    pub fault_plan: Option<String>,
    /// Bound on the per-job wait for queue space, milliseconds. 0 means
    /// fail fast (exit 3 on a full queue); a positive value exits 4 when
    /// the queue never drains in time. Unset blocks indefinitely.
    pub submit_timeout_ms: Option<u64>,
    /// Halve the job stream (CI smoke runs).
    pub quick: bool,
}

/// Parsed `watch` options.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchOpts {
    /// The live data graph's starting state.
    pub data: DataSource,
    /// Standing query specs (comma-separated on the CLI).
    pub queries: Vec<String>,
    /// Path to the edge-batch file (`+ u v` / `- u v` / `---`).
    pub batches: String,
    /// Replicated ranks serving the delta stream (failover capacity).
    pub ranks: usize,
    /// Load the data graph as directed.
    pub directed: bool,
    /// Device model name (v100|a100|test).
    pub device: String,
    /// Report format: text | json.
    pub output: String,
    /// Fault schedule (crashes keyed on batch boundaries); requires
    /// --ranks > 1.
    pub fault_plan: Option<String>,
}

/// Parsed `snapshot build` options.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotBuildOpts {
    /// Graph to profile and persist.
    pub data: DataSource,
    /// Output path for the container.
    pub out: String,
    /// Query specs to plan ahead of time (comma-separated on the CLI).
    pub queries: Vec<String>,
    /// Device model the plans are built for (v100|a100|test).
    pub device: String,
    /// Load the data graph as directed.
    pub directed: bool,
    /// Also run each query and persist its CSF result trie.
    pub store_tries: bool,
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Stats {
        data: DataSource,
        directed: bool,
    },
    Match(Box<MatchOpts>),
    /// `match` with tracing forced on and a profile report at the end.
    Profile(Box<MatchOpts>),
    /// Drain a job manifest through the multi-query scheduler.
    Serve(ServeOpts),
    /// Stream edge batches at standing queries, matching incrementally.
    Watch(WatchOpts),
    /// Build a snapshot container from a graph and query specs.
    SnapshotBuild(SnapshotBuildOpts),
    /// Verify a container's checksums and describe its sections.
    SnapshotInspect {
        path: String,
    },
    /// Render a serve run's rolling snapshots (JSON lines) as a table.
    Top {
        path: String,
    },
    /// Validate and summarise a flight-recorder post-mortem dump.
    Flight {
        path: String,
    },
    Queries {
        n: usize,
        top: usize,
    },
    Help,
}

fn take_value<'a>(flag: &str, it: &mut std::slice::Iter<'a, String>) -> Result<&'a str, String> {
    it.next()
        .map(|s| s.as_str())
        .ok_or_else(|| format!("{flag} requires a value"))
}

/// Parses argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let Some((sub, rest)) = argv.split_first() else {
        return Err("missing subcommand".into());
    };
    match sub.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "queries" => {
            let mut n = 5usize;
            let mut top = 11usize;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--n" => {
                        n = take_value("--n", &mut it)?
                            .parse()
                            .map_err(|_| "--n: bad number")?
                    }
                    "--top" => {
                        top = take_value("--top", &mut it)?
                            .parse()
                            .map_err(|_| "--top: bad number")?
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if !(2..=7).contains(&n) {
                return Err("--n must be in 2..=7".into());
            }
            Ok(Command::Queries { n, top })
        }
        "stats" => {
            let (data, extra) = parse_source(rest)?;
            let mut directed = false;
            let mut it = extra.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--directed" => directed = true,
                    "--scale" => {
                        let _ = take_value("--scale", &mut it)?; // consumed by parse_source normally
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(Command::Stats { data, directed })
        }
        "serve" => {
            let mut opts = ServeOpts {
                jobs: String::new(),
                ranks: 1,
                devices: 1,
                lanes: 4,
                queue: 64,
                aging_ms: 5,
                pacing: 0.0,
                device: "v100".into(),
                output: "text".into(),
                snapshot: None,
                stats_every: 0,
                stats_out: None,
                metrics_out: None,
                fault_plan: None,
                submit_timeout_ms: None,
                quick: false,
            };
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--jobs" => opts.jobs = take_value("--jobs", &mut it)?.to_string(),
                    "--ranks" => {
                        opts.ranks = take_value("--ranks", &mut it)?
                            .parse()
                            .map_err(|_| "--ranks: bad number")?
                    }
                    "--fault-plan" => {
                        opts.fault_plan = Some(take_value("--fault-plan", &mut it)?.to_string())
                    }
                    "--submit-timeout" => {
                        opts.submit_timeout_ms = Some(
                            take_value("--submit-timeout", &mut it)?
                                .parse()
                                .map_err(|_| "--submit-timeout: bad number of milliseconds")?,
                        )
                    }
                    "--devices" => {
                        opts.devices = take_value("--devices", &mut it)?
                            .parse()
                            .map_err(|_| "--devices: bad number")?
                    }
                    "--lanes" => {
                        opts.lanes = take_value("--lanes", &mut it)?
                            .parse()
                            .map_err(|_| "--lanes: bad number")?
                    }
                    "--queue" => {
                        opts.queue = take_value("--queue", &mut it)?
                            .parse()
                            .map_err(|_| "--queue: bad number")?
                    }
                    "--aging" => {
                        opts.aging_ms = take_value("--aging", &mut it)?
                            .parse()
                            .map_err(|_| "--aging: bad number of milliseconds")?
                    }
                    "--pacing" => {
                        opts.pacing = take_value("--pacing", &mut it)?
                            .parse()
                            .map_err(|_| "--pacing: bad number")?
                    }
                    "--device" => opts.device = take_value("--device", &mut it)?.to_string(),
                    "--output" => opts.output = take_value("--output", &mut it)?.to_string(),
                    "--snapshot" => {
                        opts.snapshot = Some(take_value("--snapshot", &mut it)?.to_string())
                    }
                    "--stats-every" => {
                        opts.stats_every = take_value("--stats-every", &mut it)?
                            .parse()
                            .map_err(|_| "--stats-every: bad number of jobs")?
                    }
                    "--stats-out" => {
                        opts.stats_out = Some(take_value("--stats-out", &mut it)?.to_string())
                    }
                    "--metrics-out" => {
                        opts.metrics_out = Some(take_value("--metrics-out", &mut it)?.to_string())
                    }
                    "--quick" => opts.quick = true,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if opts.jobs.is_empty() {
                return Err("serve requires --jobs".into());
            }
            if opts.ranks == 0 || opts.devices == 0 || opts.lanes == 0 || opts.queue == 0 {
                return Err("--ranks, --devices, --lanes, and --queue must be at least 1".into());
            }
            if opts.fault_plan.is_some() && opts.ranks < 2 {
                return Err("--fault-plan requires --ranks > 1".into());
            }
            if !matches!(opts.output.as_str(), "text" | "json") {
                return Err("--output must be text or json".into());
            }
            if opts.stats_out.is_some() && opts.stats_every == 0 {
                return Err("--stats-out requires --stats-every > 0".into());
            }
            Ok(Command::Serve(opts))
        }
        "watch" => {
            let (data, extra) = parse_source(rest)?;
            let mut opts = WatchOpts {
                data,
                queries: Vec::new(),
                batches: String::new(),
                ranks: 1,
                directed: false,
                device: "v100".into(),
                output: "text".into(),
                fault_plan: None,
            };
            let mut it = extra.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--query" => {
                        opts.queries = take_value("--query", &mut it)?
                            .split(',')
                            .map(str::to_string)
                            .collect()
                    }
                    "--batches" => opts.batches = take_value("--batches", &mut it)?.to_string(),
                    "--ranks" => {
                        opts.ranks = take_value("--ranks", &mut it)?
                            .parse()
                            .map_err(|_| "--ranks: bad number")?
                    }
                    "--directed" => opts.directed = true,
                    "--device" => opts.device = take_value("--device", &mut it)?.to_string(),
                    "--output" => opts.output = take_value("--output", &mut it)?.to_string(),
                    "--fault-plan" => {
                        opts.fault_plan = Some(take_value("--fault-plan", &mut it)?.to_string())
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if opts.queries.is_empty() || opts.queries.iter().any(String::is_empty) {
                return Err("watch requires --query with at least one spec".into());
            }
            if opts.batches.is_empty() {
                return Err("watch requires --batches".into());
            }
            if opts.ranks == 0 {
                return Err("--ranks must be at least 1".into());
            }
            if opts.fault_plan.is_some() && opts.ranks < 2 {
                return Err("--fault-plan requires --ranks > 1".into());
            }
            if !matches!(opts.output.as_str(), "text" | "json") {
                return Err("--output must be text or json".into());
            }
            Ok(Command::Watch(opts))
        }
        "top" | "flight" => {
            let mut path: Option<String> = None;
            for a in rest {
                if a.starts_with("--") || path.is_some() {
                    return Err(format!("{sub} takes one path, got {a}"));
                }
                path = Some(a.clone());
            }
            let Some(path) = path else {
                return Err(format!("{sub} requires a path"));
            };
            Ok(if sub == "top" {
                Command::Top { path }
            } else {
                Command::Flight { path }
            })
        }
        "snapshot" => {
            let Some((verb, rest)) = rest.split_first() else {
                return Err("snapshot requires a verb: build or inspect".into());
            };
            match verb.as_str() {
                "build" => {
                    let (data, extra) = parse_source(rest)?;
                    if matches!(data, DataSource::Snapshot(_)) {
                        return Err("snapshot build takes a graph source, not --snapshot".into());
                    }
                    let mut opts = SnapshotBuildOpts {
                        data,
                        out: String::new(),
                        queries: Vec::new(),
                        device: "v100".into(),
                        directed: false,
                        store_tries: false,
                    };
                    let mut it = extra.iter();
                    while let Some(a) = it.next() {
                        match a.as_str() {
                            "--out" => opts.out = take_value("--out", &mut it)?.to_string(),
                            "--queries" => {
                                opts.queries = take_value("--queries", &mut it)?
                                    .split(',')
                                    .map(|s| s.trim().to_string())
                                    .filter(|s| !s.is_empty())
                                    .collect()
                            }
                            "--device" => {
                                opts.device = take_value("--device", &mut it)?.to_string()
                            }
                            "--directed" => opts.directed = true,
                            "--store-tries" => opts.store_tries = true,
                            other => return Err(format!("unknown flag {other}")),
                        }
                    }
                    if opts.out.is_empty() {
                        return Err("snapshot build requires --out".into());
                    }
                    if opts.store_tries && opts.queries.is_empty() {
                        return Err("--store-tries requires --queries".into());
                    }
                    Ok(Command::SnapshotBuild(opts))
                }
                "inspect" => {
                    let mut path: Option<String> = None;
                    for a in rest {
                        if a.starts_with("--") || path.is_some() {
                            return Err(format!("snapshot inspect takes one path, got {a}"));
                        }
                        path = Some(a.clone());
                    }
                    let Some(path) = path else {
                        return Err("snapshot inspect requires a path".into());
                    };
                    Ok(Command::SnapshotInspect { path })
                }
                other => Err(format!("unknown snapshot verb {other} (build|inspect)")),
            }
        }
        "match" | "profile" => {
            let (data, extra) = parse_source(rest)?;
            let mut opts = MatchOpts {
                data,
                query: String::new(),
                directed: false,
                device: "v100".into(),
                engine: "cuts".into(),
                ranks: 1,
                enumerate: 0,
                chunk: 512,
                labels: None,
                output: "text".into(),
                plan_cache: 16,
                fault_plan: None,
                rank_timeout_ms: None,
                partition: None,
                trace_out: None,
                trace_format: "chrome".into(),
                trace_per_block: false,
                metrics_out: None,
                intersect: "auto".into(),
                no_prefilter: false,
            };
            let mut it = extra.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--query" => opts.query = take_value("--query", &mut it)?.to_string(),
                    "--directed" => opts.directed = true,
                    "--device" => opts.device = take_value("--device", &mut it)?.to_string(),
                    "--engine" => opts.engine = take_value("--engine", &mut it)?.to_string(),
                    "--ranks" => {
                        opts.ranks = take_value("--ranks", &mut it)?
                            .parse()
                            .map_err(|_| "--ranks: bad number")?
                    }
                    "--enumerate" => {
                        opts.enumerate = take_value("--enumerate", &mut it)?
                            .parse()
                            .map_err(|_| "--enumerate: bad number")?
                    }
                    "--chunk" => {
                        opts.chunk = take_value("--chunk", &mut it)?
                            .parse()
                            .map_err(|_| "--chunk: bad number")?
                    }
                    "--plan-cache" => {
                        opts.plan_cache = take_value("--plan-cache", &mut it)?
                            .parse()
                            .map_err(|_| "--plan-cache: bad number")?
                    }
                    "--labels" => opts.labels = Some(take_value("--labels", &mut it)?.to_string()),
                    "--output" => opts.output = take_value("--output", &mut it)?.to_string(),
                    "--fault-plan" => {
                        opts.fault_plan = Some(take_value("--fault-plan", &mut it)?.to_string())
                    }
                    "--rank-timeout" => {
                        opts.rank_timeout_ms = Some(
                            take_value("--rank-timeout", &mut it)?
                                .parse()
                                .map_err(|_| "--rank-timeout: bad number of milliseconds")?,
                        )
                    }
                    "--partition" => {
                        opts.partition = Some(take_value("--partition", &mut it)?.to_string())
                    }
                    "--trace-out" => {
                        opts.trace_out = Some(take_value("--trace-out", &mut it)?.to_string())
                    }
                    "--trace-format" => {
                        opts.trace_format = take_value("--trace-format", &mut it)?.to_string()
                    }
                    "--trace-per-block" => opts.trace_per_block = true,
                    "--metrics-out" => {
                        opts.metrics_out = Some(take_value("--metrics-out", &mut it)?.to_string())
                    }
                    "--intersect" => {
                        opts.intersect = take_value("--intersect", &mut it)?.to_string()
                    }
                    "--no-prefilter" => opts.no_prefilter = true,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if opts.query.is_empty() {
                return Err(format!("{sub} requires --query"));
            }
            if opts.ranks == 0 {
                return Err("--ranks must be at least 1".into());
            }
            if opts.fault_plan.is_some() && opts.ranks < 2 {
                return Err("--fault-plan requires --ranks > 1".into());
            }
            if !matches!(opts.trace_format.as_str(), "chrome" | "jsonl") {
                return Err("--trace-format must be chrome or jsonl".into());
            }
            if let Some(p) = &opts.partition {
                if !matches!(p.as_str(), "round-robin" | "block" | "all-to-zero") {
                    return Err("--partition must be round-robin, block, or all-to-zero".into());
                }
            }
            if !matches!(opts.intersect.as_str(), "auto" | "c" | "p" | "bitmap") {
                return Err("--intersect must be auto, c, p, or bitmap".into());
            }
            if matches!(opts.data, DataSource::Snapshot(_)) {
                // The graph (and its orientation and labels) is baked into
                // the container; only the single-device cuts engine can
                // consume the seeded plan cache.
                if opts.engine != "cuts" {
                    return Err("--snapshot supports only --engine cuts".into());
                }
                if opts.ranks != 1 {
                    return Err("--snapshot requires --ranks 1".into());
                }
                if opts.labels.is_some() {
                    return Err("--snapshot conflicts with --labels (labels are stored)".into());
                }
                if opts.directed {
                    return Err(
                        "--snapshot conflicts with --directed (orientation is stored)".into(),
                    );
                }
            }
            if sub == "profile" {
                if opts.engine != "cuts" {
                    return Err("profile supports only --engine cuts".into());
                }
                Ok(Command::Profile(Box::new(opts)))
            } else {
                Ok(Command::Match(Box::new(opts)))
            }
        }
        other => Err(format!("unknown subcommand {other}")),
    }
}

/// Extracts the data source (positional path or --dataset/--scale pair);
/// returns the remaining args.
fn parse_source(rest: &[String]) -> Result<(DataSource, Vec<String>), String> {
    let mut path: Option<String> = None;
    let mut dataset: Option<String> = None;
    let mut snapshot: Option<String> = None;
    let mut scale = "tiny".to_string();
    let mut extra = Vec::new();
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dataset" => dataset = Some(take_value("--dataset", &mut it)?.to_string()),
            "--scale" => scale = take_value("--scale", &mut it)?.to_string(),
            "--snapshot" => snapshot = Some(take_value("--snapshot", &mut it)?.to_string()),
            s if !s.starts_with("--")
                && path.is_none()
                && dataset.is_none()
                && snapshot.is_none() =>
            {
                path = Some(s.to_string())
            }
            other => extra.push(other.to_string()),
        }
    }
    match (path, dataset, snapshot) {
        (Some(p), None, None) => Ok((DataSource::File(p), extra)),
        (None, Some(name), None) => Ok((DataSource::Dataset { name, scale }, extra)),
        (None, None, Some(p)) => Ok((DataSource::Snapshot(p), extra)),
        (None, None, None) => {
            Err("missing data graph (file path, --dataset, or --snapshot)".into())
        }
        _ => Err("give exactly one of: a file path, --dataset, or --snapshot".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_match_with_file() {
        let c = parse(&argv("match graph.txt --query clique:4 --ranks 2")).unwrap();
        match c {
            Command::Match(o) => {
                assert_eq!(o.data, DataSource::File("graph.txt".into()));
                assert_eq!(o.query, "clique:4");
                assert_eq!(o.ranks, 2);
                assert_eq!(o.device, "v100");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_match_with_dataset() {
        let c = parse(&argv(
            "match --dataset enron --scale small --query chain:5 --engine gsi --device a100",
        ))
        .unwrap();
        match c {
            Command::Match(o) => {
                assert_eq!(
                    o.data,
                    DataSource::Dataset {
                        name: "enron".into(),
                        scale: "small".into()
                    }
                );
                assert_eq!(o.engine, "gsi");
                assert_eq!(o.device, "a100");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_watch() {
        let c = parse(&argv(
            "watch g.txt --query clique:3,chain:4 --batches edits.txt --ranks 2 \
             --fault-plan crash:0@1 --device test --output json",
        ))
        .unwrap();
        match c {
            Command::Watch(o) => {
                assert_eq!(o.data, DataSource::File("g.txt".into()));
                assert_eq!(
                    o.queries,
                    vec!["clique:3".to_string(), "chain:4".to_string()]
                );
                assert_eq!(o.batches, "edits.txt");
                assert_eq!(o.ranks, 2);
                assert_eq!(o.fault_plan.as_deref(), Some("crash:0@1"));
                assert_eq!(o.device, "test");
                assert_eq!(o.output, "json");
                assert!(!o.directed);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn watch_rejects_bad_combinations() {
        // Both --query and --batches are mandatory.
        assert!(parse(&argv("watch g.txt --batches b.txt")).is_err());
        assert!(parse(&argv("watch g.txt --query clique:3")).is_err());
        // Fault injection needs a surviving rank to fail over to.
        assert!(parse(&argv(
            "watch g.txt --query clique:3 --batches b.txt --fault-plan crash:0@1"
        ))
        .is_err());
        assert!(parse(&argv(
            "watch g.txt --query clique:3 --batches b.txt --output yaml"
        ))
        .is_err());
    }

    #[test]
    fn parses_labels_and_output() {
        let c = parse(&argv(
            "match g.txt --query clique:3 --labels zipf:4 --output json",
        ))
        .unwrap();
        match c {
            Command::Match(o) => {
                assert_eq!(o.labels.as_deref(), Some("zipf:4"));
                assert_eq!(o.output, "json");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_plan_cache() {
        let c = parse(&argv("match g.txt --query clique:3 --plan-cache 0")).unwrap();
        match c {
            Command::Match(o) => assert_eq!(o.plan_cache, 0),
            other => panic!("{other:?}"),
        }
        // Default.
        let c = parse(&argv("match g.txt --query clique:3")).unwrap();
        match c {
            Command::Match(o) => assert_eq!(o.plan_cache, 16),
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("match g.txt --query clique:3 --plan-cache x")).is_err());
    }

    #[test]
    fn rejects_missing_query() {
        assert!(parse(&argv("match graph.txt")).is_err());
    }

    #[test]
    fn parses_intersect_and_prefilter_flags() {
        for arm in ["auto", "c", "p", "bitmap"] {
            let c = parse(&argv(&format!(
                "match g.txt --query clique:3 --intersect {arm}"
            )))
            .unwrap();
            match c {
                Command::Match(o) => assert_eq!(o.intersect, arm),
                other => panic!("{other:?}"),
            }
        }
        // Defaults: auto with the prefilter on.
        let c = parse(&argv("match g.txt --query clique:3 --no-prefilter")).unwrap();
        match c {
            Command::Match(o) => {
                assert_eq!(o.intersect, "auto");
                assert!(o.no_prefilter);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("match g.txt --query clique:3 --intersect adaptive")).is_err());
    }

    #[test]
    fn parses_fault_plan_and_rank_timeout() {
        let c = parse(&argv(
            "match g.txt --query clique:3 --ranks 4 --fault-plan crash:1@2,drop:0->2@3 --rank-timeout 80",
        ))
        .unwrap();
        match c {
            Command::Match(o) => {
                assert_eq!(o.fault_plan.as_deref(), Some("crash:1@2,drop:0->2@3"));
                assert_eq!(o.rank_timeout_ms, Some(80));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fault_plan_requires_multiple_ranks() {
        assert!(parse(&argv("match g.txt --query clique:3 --fault-plan crash:0@0")).is_err());
        assert!(parse(&argv("match g.txt --query clique:3 --rank-timeout")).is_err());
    }

    #[test]
    fn parses_trace_and_partition_flags() {
        let c = parse(&argv(
            "match g.txt --query clique:3 --trace-out t.json --trace-format jsonl \
             --trace-per-block --metrics-out m.prom --ranks 4 --partition all-to-zero",
        ))
        .unwrap();
        match c {
            Command::Match(o) => {
                assert_eq!(o.trace_out.as_deref(), Some("t.json"));
                assert_eq!(o.trace_format, "jsonl");
                assert!(o.trace_per_block);
                assert_eq!(o.metrics_out.as_deref(), Some("m.prom"));
                assert_eq!(o.partition.as_deref(), Some("all-to-zero"));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("match g.txt --query clique:3 --trace-format xml")).is_err());
        assert!(parse(&argv("match g.txt --query clique:3 --partition nope")).is_err());
    }

    #[test]
    fn parses_profile_subcommand() {
        let c = parse(&argv("profile g.txt --query clique:3 --ranks 4")).unwrap();
        match c {
            Command::Profile(o) => {
                assert_eq!(o.query, "clique:3");
                assert_eq!(o.ranks, 4);
                assert_eq!(o.trace_format, "chrome");
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("profile g.txt --query clique:3 --engine vf2")).is_err());
        assert!(parse(&argv("profile g.txt")).is_err());
    }

    #[test]
    fn parses_serve_subcommand() {
        let c = parse(&argv(
            "serve --jobs demo.jobs --devices 2 --lanes 4 --queue 32 --aging 10 --pacing 1.5",
        ))
        .unwrap();
        match c {
            Command::Serve(o) => {
                assert_eq!(o.jobs, "demo.jobs");
                assert_eq!(o.devices, 2);
                assert_eq!(o.lanes, 4);
                assert_eq!(o.queue, 32);
                assert_eq!(o.aging_ms, 10);
                assert!((o.pacing - 1.5).abs() < 1e-12);
                assert_eq!(o.device, "v100");
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve")).is_err(), "requires --jobs");
        assert!(parse(&argv("serve --jobs j --lanes 0")).is_err());
        assert!(parse(&argv("serve --jobs j --output xml")).is_err());
    }

    #[test]
    fn rejects_both_sources() {
        assert!(parse(&argv("stats graph.txt --dataset enron")).is_err());
        assert!(parse(&argv("stats graph.txt --snapshot s.snap")).is_err());
        assert!(parse(&argv(
            "match --dataset enron --snapshot s.snap --query clique:3"
        ))
        .is_err());
    }

    #[test]
    fn parses_snapshot_build() {
        let c = parse(&argv(
            "snapshot build --dataset enron --out warm.snap --queries clique:3,chain:4 \
             --device test --store-tries",
        ))
        .unwrap();
        match c {
            Command::SnapshotBuild(o) => {
                assert_eq!(
                    o.data,
                    DataSource::Dataset {
                        name: "enron".into(),
                        scale: "tiny".into()
                    }
                );
                assert_eq!(o.out, "warm.snap");
                assert_eq!(
                    o.queries,
                    vec!["clique:3".to_string(), "chain:4".to_string()]
                );
                assert_eq!(o.device, "test");
                assert!(o.store_tries);
                assert!(!o.directed);
            }
            other => panic!("{other:?}"),
        }
        // --out is mandatory; --store-tries needs queries; a source is needed.
        assert!(parse(&argv("snapshot build --dataset enron")).is_err());
        assert!(parse(&argv(
            "snapshot build --dataset enron --out s --store-tries"
        ))
        .is_err());
        assert!(parse(&argv("snapshot build --out s")).is_err());
        assert!(parse(&argv("snapshot build --snapshot a.snap --out s")).is_err());
        assert!(parse(&argv("snapshot")).is_err());
        assert!(parse(&argv("snapshot frobnicate")).is_err());
    }

    #[test]
    fn parses_snapshot_inspect() {
        assert_eq!(
            parse(&argv("snapshot inspect warm.snap")).unwrap(),
            Command::SnapshotInspect {
                path: "warm.snap".into()
            }
        );
        assert!(parse(&argv("snapshot inspect")).is_err());
        assert!(parse(&argv("snapshot inspect a.snap b.snap")).is_err());
        assert!(parse(&argv("snapshot inspect --flag a.snap")).is_err());
    }

    #[test]
    fn parses_match_snapshot_source() {
        let c = parse(&argv("match --snapshot warm.snap --query clique:3")).unwrap();
        match c {
            Command::Match(o) => {
                assert_eq!(o.data, DataSource::Snapshot("warm.snap".into()));
                assert_eq!(o.query, "clique:3");
            }
            other => panic!("{other:?}"),
        }
        // The snapshot pins engine, ranks, orientation, and labels.
        for bad in [
            "match --snapshot s --query clique:3 --engine gsi",
            "match --snapshot s --query clique:3 --ranks 2",
            "match --snapshot s --query clique:3 --labels zipf:4",
            "match --snapshot s --query clique:3 --directed",
        ] {
            assert!(parse(&argv(bad)).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_serve_stats_flags() {
        let c = parse(&argv(
            "serve --jobs j --stats-every 10 --stats-out s.jsonl --metrics-out m.prom",
        ))
        .unwrap();
        match c {
            Command::Serve(o) => {
                assert_eq!(o.stats_every, 10);
                assert_eq!(o.stats_out.as_deref(), Some("s.jsonl"));
                assert_eq!(o.metrics_out.as_deref(), Some("m.prom"));
            }
            other => panic!("{other:?}"),
        }
        // Defaults: telemetry is always on, rolling emission off.
        match parse(&argv("serve --jobs j")).unwrap() {
            Command::Serve(o) => {
                assert_eq!(o.stats_every, 0);
                assert_eq!(o.stats_out, None);
                assert_eq!(o.metrics_out, None);
            }
            other => panic!("{other:?}"),
        }
        // A snapshot file with no emission cadence would stay empty.
        assert!(parse(&argv("serve --jobs j --stats-out s.jsonl")).is_err());
        assert!(parse(&argv("serve --jobs j --stats-every x")).is_err());
    }

    #[test]
    fn parses_top_and_flight() {
        assert_eq!(
            parse(&argv("top metrics.jsonl")).unwrap(),
            Command::Top {
                path: "metrics.jsonl".into()
            }
        );
        assert_eq!(
            parse(&argv("flight dump.json")).unwrap(),
            Command::Flight {
                path: "dump.json".into()
            }
        );
        assert!(parse(&argv("top")).is_err());
        assert!(parse(&argv("flight a.json b.json")).is_err());
        assert!(parse(&argv("top --flag p")).is_err());
    }

    #[test]
    fn parses_serve_ranks_and_fault_plan() {
        let c = parse(&argv(
            "serve --jobs j --ranks 4 --fault-plan crash:2@1 --submit-timeout 250 --quick",
        ))
        .unwrap();
        match c {
            Command::Serve(o) => {
                assert_eq!(o.ranks, 4);
                assert_eq!(o.fault_plan.as_deref(), Some("crash:2@1"));
                assert_eq!(o.submit_timeout_ms, Some(250));
                assert!(o.quick);
            }
            other => panic!("{other:?}"),
        }
        // Defaults: one rank, no faults, block indefinitely, full stream.
        match parse(&argv("serve --jobs j")).unwrap() {
            Command::Serve(o) => {
                assert_eq!(o.ranks, 1);
                assert_eq!(o.fault_plan, None);
                assert_eq!(o.submit_timeout_ms, None);
                assert!(!o.quick);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&argv("serve --jobs j --ranks 0")).is_err());
        assert!(parse(&argv("serve --jobs j --fault-plan crash:0@0")).is_err());
        assert!(parse(&argv("serve --jobs j --submit-timeout x")).is_err());
    }

    #[test]
    fn parses_serve_snapshot_flag() {
        let c = parse(&argv("serve --jobs demo.jobs --snapshot warm.snap")).unwrap();
        match c {
            Command::Serve(o) => assert_eq!(o.snapshot.as_deref(), Some("warm.snap")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_queries_bounds() {
        assert_eq!(
            parse(&argv("queries --n 6 --top 4")).unwrap(),
            Command::Queries { n: 6, top: 4 }
        );
        assert!(parse(&argv("queries --n 9")).is_err());
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse(&argv(h)).unwrap(), Command::Help);
        }
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&argv("match g.txt --query clique:3 --frobnicate")).is_err());
        assert!(parse(&argv("bogus")).is_err());
        assert!(parse(&[]).is_err());
    }
}
