//! `cuts` — command-line front end.
//!
//! ```text
//! cuts stats   <edgelist>                         graph statistics (Table 2 style)
//! cuts match   <edgelist> --query <spec> [opts]   count/enumerate embeddings
//! cuts queries --n 5 --top 11                     print the paper's query suite
//! cuts help
//! ```
//!
//! Query specs: `clique:K`, `chain:K`, `cycle:K`, `star:K`, or a path to a
//! second edge-list file. Options for `match`:
//! `--device v100|a100|test`, `--directed`, `--ranks N`, `--engine
//! cuts|gsi|gunrock|vf2`, `--enumerate N` (print the first N embeddings),
//! `--dataset enron|gowalla|...` with `--scale tiny|small|medium|paper`
//! instead of an edge-list path.

use std::process::ExitCode;

use cuts_core::{CutsError, SchedError};

mod args;
mod commands;

/// Maps a command failure to its exit code: admission-control outcomes
/// are distinct so callers can react without parsing stderr — `3` means
/// the serving queue was full (`SchedError::Busy`), `4` that a bounded
/// submit wait expired (`SchedError::Timeout`). Everything else is `1`.
fn exit_code_for(e: &CutsError) -> ExitCode {
    match e {
        CutsError::Sched(SchedError::Busy { .. }) => ExitCode::from(3),
        CutsError::Sched(SchedError::Timeout { .. }) => ExitCode::from(4),
        _ => ExitCode::FAILURE,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(&argv) {
        Ok(cmd) => match commands::run(cmd) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                exit_code_for(&e)
            }
        },
        Err(e) => {
            eprintln!("usage error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
