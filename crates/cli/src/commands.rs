//! Command implementations.

use cuts_baseline::{vf2, GsiEngine, GunrockEngine};
use cuts_core::prelude::*;
use cuts_core::{sched, IntersectStrategy, SessionStats};
use cuts_dist::{run as dist_run, DistConfig, FaultPlan, Partition};
use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_graph::generators::{chain, clique, cycle, star};
use cuts_graph::labels::{degree_band_labels, random_labels, zipf_labels};
use cuts_graph::stats::{degree_histogram, stats};
use cuts_graph::{edgelist, query_set, Dataset, EdgeBatch, Graph, Scale, VertexId};
use cuts_obs::flight::{self, FlightCode};
use cuts_obs::{
    chrome_trace, jsonl, Arg, Event, EventKind, Json, MetricsSnapshot, ToJson, Trace, TraceConfig,
};

use crate::args::{Command, DataSource, MatchOpts, ServeOpts, SnapshotBuildOpts, WatchOpts, USAGE};
use cuts_core::Snapshot;
use cuts_trie::csf::Csf;
use cuts_trie::HostTrie;
use std::sync::Arc;

/// Top-level command error: the workspace's unified [`CutsError`].
pub type CmdError = CutsError;

/// Shorthand for flag/spec rejections.
fn invalid(what: &'static str, given: impl Into<String>) -> CmdError {
    CutsError::Invalid {
        what,
        given: given.into(),
    }
}

/// Executes a parsed command.
pub fn run(cmd: Command) -> Result<(), CmdError> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Queries { n, top } => {
            for q in query_set(n, top) {
                let edges: Vec<_> = q.graph.edges().filter(|(u, v)| u < v).collect();
                println!("{}: {} edges {:?}", q.name, q.num_edges, edges);
            }
            Ok(())
        }
        Command::Stats { data, directed } => {
            let g = load(&data, directed)?;
            let s = stats(&g);
            println!("vertices:        {}", s.vertices);
            println!("arcs:            {}", s.arcs);
            println!("input edges:     {}", s.input_edges);
            println!("max out-degree:  {}", s.max_out_degree);
            println!("max in-degree:   {}", s.max_in_degree);
            println!("avg out-degree:  {:.3}", s.avg_out_degree);
            println!("p99 out-degree:  {}", s.p99_out_degree);
            let hist = degree_histogram(&g);
            println!("degree histogram (pow-2 buckets): {hist:?}");
            Ok(())
        }
        Command::Match(opts) => run_match(&opts, false),
        Command::Profile(opts) => run_match(&opts, true),
        Command::Serve(opts) => match run_serve(&opts) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Any error escaping serve is a serving incident: freeze
                // the recorder's last events for post-mortem analysis.
                flight::record(FlightCode::ServeErr, 0, 0);
                if let Some(p) = flight::postmortem("serve_error") {
                    eprintln!("flight recorder: post-mortem written to {}", p.display());
                }
                Err(e)
            }
        },
        Command::Watch(opts) => run_watch(&opts),
        Command::SnapshotBuild(opts) => run_snapshot_build(&opts),
        Command::SnapshotInspect { path } => run_snapshot_inspect(&path),
        Command::Top { path } => run_top(&path),
        Command::Flight { path } => run_flight(&path),
    }
}

/// Resolves a data source into a graph.
fn load(src: &DataSource, directed: bool) -> Result<Graph, CmdError> {
    match src {
        DataSource::File(path) => Ok(if directed {
            edgelist::load_directed(path)?
        } else {
            edgelist::load_undirected(path)?
        }),
        DataSource::Dataset { name, scale } => {
            let ds = match name.to_lowercase().as_str() {
                "enron" => Dataset::Enron,
                "gowalla" => Dataset::Gowalla,
                "roadnet-pa" => Dataset::RoadNetPA,
                "roadnet-tx" => Dataset::RoadNetTX,
                "roadnet-ca" => Dataset::RoadNetCA,
                "wikitalk" => Dataset::WikiTalk,
                other => return Err(invalid("dataset", other)),
            };
            let sc = match scale.as_str() {
                "tiny" => Scale::Tiny,
                "small" => Scale::Small,
                "medium" => Scale::Medium,
                "paper" => Scale::Paper,
                other => return Err(invalid("scale", other)),
            };
            Ok(ds.generate(sc))
        }
        // Decode the stored graph (profile included); `directed` is
        // ignored — orientation travels inside the container.
        DataSource::Snapshot(path) => Ok(Snapshot::read_from(path)?.graph().clone()),
    }
}

/// Parses a query spec (`clique:K` etc. or a file path).
fn load_query(spec: &str, directed: bool) -> Result<Graph, CmdError> {
    if let Some((kind, k)) = spec.split_once(':') {
        let k: usize = k.parse().map_err(|_| invalid("query size", spec))?;
        if !(1..=12).contains(&k) {
            return Err(invalid("query size (must be 1..=12)", spec));
        }
        return Ok(match kind {
            "clique" => clique(k),
            "chain" => chain(k),
            "cycle" => cycle(k),
            "star" => star(k),
            other => return Err(invalid("query kind", other)),
        });
    }
    load(&DataSource::File(spec.to_string()), directed)
}

fn device_config(name: &str) -> Result<DeviceConfig, CmdError> {
    Ok(match name {
        "v100" => DeviceConfig::v100_like(),
        "a100" => DeviceConfig::a100_like(),
        "test" => DeviceConfig::test_small(),
        other => return Err(invalid("device", other)),
    })
}

/// Attaches labels per the `--labels` spec to both graphs (same label
/// alphabet, deterministic seeds).
fn apply_labels(spec: &str, data: Graph, query: Graph) -> Result<(Graph, Graph), CmdError> {
    let nd = data.num_vertices();
    let nq = query.num_vertices();
    let (dl, ql) = if let Some((kind, k)) = spec.split_once(':') {
        let k: u32 = k.parse().map_err(|_| invalid("label count", spec))?;
        if k == 0 {
            return Err(invalid("label count (must be positive)", spec));
        }
        match kind {
            "random" => (random_labels(nd, k, 11), random_labels(nq, k, 13)),
            "zipf" => (zipf_labels(nd, k, 11), zipf_labels(nq, k, 13)),
            other => return Err(invalid("label scheme", other)),
        }
    } else if spec == "bands" {
        (degree_band_labels(&data, 8), degree_band_labels(&query, 8))
    } else {
        return Err(invalid("label spec", spec));
    };
    Ok((data.with_labels(dl), query.with_labels(ql)))
}

/// Maps the `--partition` flag to the worker enum.
fn partition_of(spec: &str) -> Result<Partition, CmdError> {
    Ok(match spec {
        "round-robin" => Partition::RoundRobin,
        "block" => Partition::Block,
        "all-to-zero" => Partition::AllToRankZero,
        other => return Err(invalid("partition", other)),
    })
}

fn intersect_of(spec: &str) -> Result<IntersectStrategy, CmdError> {
    Ok(match spec {
        "auto" => IntersectStrategy::Auto,
        "c" => IntersectStrategy::CIntersection,
        "p" => IntersectStrategy::PIntersection,
        "bitmap" => IntersectStrategy::Bitmap,
        other => return Err(invalid("intersect", other)),
    })
}

fn run_match(opts: &MatchOpts, profile: bool) -> Result<(), CmdError> {
    if let DataSource::Snapshot(path) = &opts.data {
        return run_match_warm(path, opts, profile);
    }
    let mut data = load(&opts.data, opts.directed)?;
    let mut query = load_query(&opts.query, opts.directed)?;
    if let Some(spec) = &opts.labels {
        (data, query) = apply_labels(spec, data, query)?;
    }
    println!(
        "data: {} vertices / {} arcs; query: {} vertices / {} arcs",
        data.num_vertices(),
        data.num_edges(),
        query.num_vertices(),
        query.num_edges()
    );
    let dev_cfg = device_config(&opts.device)?;
    let engine_cfg = EngineConfig::default()
        .with_chunk_size(opts.chunk)
        .with_intersect(intersect_of(&opts.intersect)?)
        .with_signature_prefilter(!opts.no_prefilter);
    // `profile` always records; `match` only when an output asks for it.
    let trace = if profile || opts.trace_out.is_some() || opts.metrics_out.is_some() {
        Trace::with_config(TraceConfig {
            per_block: opts.trace_per_block,
            ..Default::default()
        })
    } else {
        Trace::disabled()
    };

    if opts.ranks > 1 {
        if opts.engine != "cuts" {
            return Err(invalid("engine for --ranks > 1 (cuts only)", &opts.engine));
        }
        let mut config = DistConfig {
            device: dev_cfg,
            engine: engine_cfg,
            dist_chunk: opts.chunk,
            ..Default::default()
        };
        if let Some(spec) = &opts.partition {
            config.partition = partition_of(spec)?;
        }
        if let Some(spec) = &opts.fault_plan {
            config.fault_plan = FaultPlan::parse(spec)?;
            config.fault_plan.check_ranks(opts.ranks)?;
        }
        if let Some(ms) = opts.rank_timeout_ms {
            config.rank_timeout = std::time::Duration::from_millis(ms);
        }
        config.trace = trace.clone();
        let r = dist_run(&data, &query, opts.ranks, &config)?;
        if opts.output == "json" {
            println!("{}", r.to_json().render());
            return finish_trace(&trace, opts, profile, r.total_matches);
        }
        println!("matches: {}", r.total_matches);
        println!(
            "makespan: {:.3} sim-ms over {} ranks (balance {:.2})",
            r.makespan_sim_millis(),
            opts.ranks,
            r.balance_ratio()
        );
        for m in &r.per_rank {
            if m.lost {
                println!(
                    "  rank {}: LOST (work recovered by surviving ranks)",
                    m.rank
                );
                continue;
            }
            println!(
                "  rank {}: {:>10} matches, {:>8.3} sim-ms, {} jobs, {}/{} donations out/in, {} plan build(s) / {} reuse(s)",
                m.rank,
                m.matches,
                m.busy_sim_millis,
                m.jobs_processed,
                m.donations_sent,
                m.donations_received,
                m.plan_builds,
                m.plan_reuses
            );
        }
        if !r.recovery.is_clean() {
            println!(
                "recovery: {} rank(s) lost {:?}, {} chunk(s) reassigned, {} duplicate(s) discarded",
                r.recovery.ranks_lost,
                r.recovery.lost_ranks,
                r.recovery.chunks_reassigned,
                r.recovery.duplicate_chunks
            );
            println!(
                "          {} message(s) dropped, {} delayed; recovered in {:.1} ms",
                r.recovery.messages_dropped,
                r.recovery.messages_delayed,
                r.recovery.recovery_millis
            );
        }
        return finish_trace(&trace, opts, profile, r.total_matches);
    }

    let matches: u64 = match opts.engine.as_str() {
        "vf2" => {
            let start = std::time::Instant::now();
            let count = vf2::count(&data, &query);
            println!("matches: {count}");
            println!("cpu wall: {:.3} ms", start.elapsed().as_secs_f64() * 1e3);
            count
        }
        "cuts" => {
            let mut device = Device::new(dev_cfg);
            device.set_trace(trace.clone());
            let session =
                ExecSession::with_cache_capacity(&device, engine_cfg.clone(), opts.plan_cache);
            let r = if opts.enumerate > 0 {
                let mut shown = 0usize;
                session.run_enumerate(&data, &query, &mut |m| {
                    if shown < opts.enumerate {
                        println!("  {m:?}");
                        shown += 1;
                    }
                })?
            } else {
                session.run(&data, &query)?
            };
            report(&r, Some(&session.stats()), &opts.output)?;
            r.num_matches
        }
        "gsi" => {
            let mut device = Device::new(dev_cfg);
            device.set_trace(trace.clone());
            let r = GsiEngine::new(&device).run(&data, &query)?;
            report(&r, None, &opts.output)?;
            r.num_matches
        }
        "gunrock" => {
            let mut device = Device::new(dev_cfg);
            device.set_trace(trace.clone());
            let r = GunrockEngine::new(&device).run(&data, &query)?;
            report(&r, None, &opts.output)?;
            r.num_matches
        }
        other => return Err(invalid("engine", other)),
    };
    finish_trace(&trace, opts, profile, matches)
}

/// `cuts match --snapshot`: warm-start from a container. Ingestion and
/// profiling are skipped entirely — the graph arrives with its profile
/// installed — and persisted plans seed the session's cache, so a query
/// planned at build time runs with zero plan builds here.
fn run_match_warm(path: &str, opts: &MatchOpts, profile: bool) -> Result<(), CmdError> {
    let snap = Snapshot::read_from(path)?;
    let query = load_query(&opts.query, false)?;
    println!(
        "snapshot: {} vertices / {} arcs, {} plan(s), {} trie(s) from {path}",
        snap.graph().num_vertices(),
        snap.graph().num_edges(),
        snap.plans().len(),
        snap.tries().len()
    );
    let dev_cfg = device_config(&opts.device)?;
    let engine_cfg = EngineConfig::default()
        .with_chunk_size(opts.chunk)
        .with_intersect(intersect_of(&opts.intersect)?)
        .with_signature_prefilter(!opts.no_prefilter);
    let trace = if profile || opts.trace_out.is_some() || opts.metrics_out.is_some() {
        Trace::with_config(TraceConfig {
            per_block: opts.trace_per_block,
            ..Default::default()
        })
    } else {
        Trace::disabled()
    };
    let mut device = Device::new(dev_cfg);
    device.set_trace(trace.clone());
    let session = ExecSession::from_snapshot(&device, engine_cfg, &snap);
    let data = snap.graph();
    let r = if opts.enumerate > 0 {
        let mut shown = 0usize;
        session.run_enumerate(data, &query, &mut |m| {
            if shown < opts.enumerate {
                println!("  {m:?}");
                shown += 1;
            }
        })?
    } else {
        session.run(data, &query)?
    };
    report(&r, Some(&session.stats()), &opts.output)?;
    finish_trace(&trace, opts, profile, r.num_matches)
}

/// `cuts snapshot build`: profile a graph, plan each query spec, and
/// persist everything — optionally with each query's CSF result trie — as
/// one versioned, checksummed container.
fn run_snapshot_build(opts: &SnapshotBuildOpts) -> Result<(), CmdError> {
    let data = load(&opts.data, opts.directed)?;
    println!(
        "data: {} vertices / {} arcs",
        data.num_vertices(),
        data.num_edges()
    );
    let dev_cfg = device_config(&opts.device)?;
    let device = Device::new(dev_cfg);
    // The cache must hold every requested plan; capture() persists its
    // contents.
    let session = ExecSession::with_cache_capacity(
        &device,
        EngineConfig::default(),
        16usize.max(opts.queries.len()),
    );
    let mut queries = Vec::with_capacity(opts.queries.len());
    for spec in &opts.queries {
        let q = load_query(spec, opts.directed)?;
        let plan = session.plan_for(&q)?;
        println!(
            "  planned {spec}: {} level(s), query key {:#018x}",
            plan.len(),
            plan.key.query
        );
        queries.push(q);
    }
    let mut snap = Snapshot::capture(&data, &session);
    if opts.store_tries {
        for (spec, q) in opts.queries.iter().zip(&queries) {
            let plan = session.plan_for(q)?; // cache hit: planned above
            let order = plan.order.order.clone();
            let mut paths: Vec<Vec<u32>> = Vec::new();
            session.run_enumerate(&data, q, &mut |m| {
                // The sink is indexed by query vertex id; trie paths are
                // in matching-order space.
                paths.push(order.iter().map(|&v| m[v as usize]).collect());
            })?;
            let csf = Csf::from_host_trie(&HostTrie::from_flat_paths(&paths));
            snap.add_trie(plan.key.query, csf);
            println!("  stored result trie for {spec}: {} path(s)", paths.len());
        }
    }
    snap.write_to(&opts.out)?;
    // Re-read and verify: a snapshot we cannot inspect is not a snapshot.
    let bytes = std::fs::read(&opts.out).map_err(|e| CutsError::io(&opts.out, e))?;
    let info = cuts_core::snapshot::inspect(&bytes)?;
    println!(
        "snapshot: {} plan(s), {} trie(s), {} byte(s) -> {}",
        info.plans, info.tries, info.total_bytes, opts.out
    );
    Ok(())
}

/// `cuts snapshot inspect`: verify every checksum and describe the
/// container without decoding its payloads.
fn run_snapshot_inspect(path: &str) -> Result<(), CmdError> {
    let bytes = std::fs::read(path).map_err(|e| CutsError::io(path, e))?;
    let info = cuts_core::snapshot::inspect(&bytes)?;
    println!("snapshot: {path}");
    println!("  version:  {}", info.version);
    println!(
        "  graph:    {} vertices / {} arcs ({}, {})",
        info.vertices,
        info.arcs,
        if info.symmetric {
            "undirected"
        } else {
            "directed"
        },
        if info.labeled { "labeled" } else { "unlabeled" }
    );
    println!("  plans:    {}", info.plans);
    println!("  tries:    {}", info.tries);
    println!("  size:     {} byte(s)", info.total_bytes);
    println!("  sections (all checksums verified):");
    for s in &info.sections {
        let tag = std::str::from_utf8(&s.tag).unwrap_or("????");
        println!("    {tag}  {:>8} byte(s)  crc {:#010x}", s.len, s.crc);
    }
    Ok(())
}

/// `cuts serve`: drain a job manifest through the multi-rank serving
/// tier and a serial baseline, report throughput and tail latency, and
/// verify the two executions are byte-identical per job.
fn run_serve(opts: &ServeOpts) -> Result<(), CmdError> {
    let text = std::fs::read_to_string(&opts.jobs).map_err(|e| CutsError::io(&opts.jobs, e))?;
    let mut jobs = sched::parse_manifest(&text)?;
    if opts.quick {
        jobs.truncate(jobs.len().div_ceil(2));
    }
    if jobs.is_empty() {
        return Err(invalid("job manifest (no jobs)", &opts.jobs));
    }
    // Warm start: every job matches against the snapshot's graph (whose
    // profile is already installed) and persisted plans seed every rank
    // session's cache.
    let mut warm_plans = Vec::new();
    if let Some(path) = &opts.snapshot {
        let snap = Snapshot::read_from(path)?;
        let shared = Arc::new(snap.graph().clone());
        for job in &mut jobs {
            job.data = Arc::clone(&shared);
        }
        warm_plans = snap.plans().to_vec();
        println!(
            "snapshot: {path} supplies the data graph for all {} job(s); {} plan(s) loaded",
            jobs.len(),
            warm_plans.len()
        );
    }
    // Job lifecycle events (submit/admit/migrate/readmit/complete) feed
    // the queue-vs-execution breakdown at the end of the run.
    let trace = Trace::enabled();
    let mut builder = ServeConfig::builder()
        .ranks(opts.ranks)
        .devices_per_rank(opts.devices)
        .lanes(opts.lanes)
        .device_config(device_config(&opts.device)?)
        .queue_capacity(opts.queue)
        .aging(std::time::Duration::from_millis(opts.aging_ms))
        .pacing(opts.pacing)
        .warm_plans(warm_plans)
        .trace(trace.clone())
        .stats_every(opts.stats_every);
    if let Some(spec) = &opts.fault_plan {
        builder = builder.fault_plan(FaultPlan::parse(spec)?);
    }
    if let Some(path) = &opts.stats_out {
        let file = std::fs::File::create(path).map_err(|e| CutsError::io(path, e))?;
        let file = std::sync::Mutex::new(file);
        builder = builder.stats_sink(move |line| {
            use std::io::Write;
            if let Ok(mut f) = file.lock() {
                let _ = writeln!(f, "{line}");
            }
        });
    } else if opts.stats_every > 0 {
        builder = builder.stats_sink(|line| println!("stats: {line}"));
    }
    let tier = ServeTier::new(builder.build()?);
    println!(
        "serve: {} job(s) from {} across {} rank(s) x {} device(s) x {} lane(s)",
        jobs.len(),
        opts.jobs,
        opts.ranks,
        opts.devices,
        opts.lanes
    );

    let serial = tier.run_serial(&jobs)?;
    let timeout = opts.submit_timeout_ms;
    let report = tier.run(|h| {
        for job in jobs.iter().cloned() {
            match timeout {
                // Block until the tier has queue space.
                None => {
                    h.submit_wait(job);
                }
                // Fail fast: a full queue is a typed Busy error (exit 3).
                Some(0) => {
                    h.submit(job)?;
                }
                // Bounded wait: exhaustion is a typed Timeout (exit 4).
                Some(ms) => {
                    h.submit_wait_timeout(job, std::time::Duration::from_millis(ms))?;
                }
            }
        }
        Ok(())
    })?;

    // The tier must be a pure throughput optimisation: per-job results
    // byte-identical to the serial loop at any rank/lane count, even
    // when a fault plan killed ranks mid-stream.
    let mismatched = serial
        .outcomes
        .iter()
        .zip(&report.outcomes)
        .filter(|(a, b)| match (&a.result, &b.result) {
            (Ok(x), Ok(y)) => x.canonical_bytes() != y.canonical_bytes(),
            (Err(_), Err(_)) => false,
            _ => true,
        })
        .count();
    let speedup = if serial.wall_millis > 0.0 {
        report.jobs_per_sec() / serial.jobs_per_sec().max(f64::MIN_POSITIVE)
    } else {
        1.0
    };

    if opts.output == "json" {
        let root = Json::obj([
            ("jobs", Json::U64(jobs.len() as u64)),
            ("ranks", Json::U64(opts.ranks as u64)),
            ("devices", Json::U64(opts.devices as u64)),
            ("lanes", Json::U64(opts.lanes as u64)),
            ("serial", serial.to_json()),
            ("serve", report.to_json()),
            ("speedup", Json::F64(speedup)),
            ("mismatched_jobs", Json::U64(mismatched as u64)),
        ]);
        println!("{}", root.render());
    } else {
        let fmt_pct = |r: &ServeReport, p: f64| {
            let mut v: Vec<f64> = r
                .outcomes
                .iter()
                .map(|o| o.queue_millis + o.exec_millis)
                .collect();
            if v.is_empty() {
                return "-".to_string();
            }
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
            format!("{:.3}", v[idx])
        };
        println!(
            "serial:    {:>8.2} jobs/s  ({:.3} ms wall)",
            serial.jobs_per_sec(),
            serial.wall_millis
        );
        println!(
            "serve:     {:>8.2} jobs/s  ({:.3} ms wall)  speedup {:.2}x",
            report.jobs_per_sec(),
            report.wall_millis,
            speedup
        );
        println!(
            "latency:   p50 {} ms   p99 {} ms (queue + execution)",
            fmt_pct(&report, 50.0),
            fmt_pct(&report, 99.0)
        );
        let s = &report.stats;
        println!(
            "stats:     {} completed / {} failed; {} migrated, {} readmitted",
            s.completed, s.failed, s.migrated, s.readmitted
        );
        if !s.lost_ranks.is_empty() {
            println!(
                "faults:    rank(s) {:?} lost mid-stream; their jobs were re-admitted",
                s.lost_ranks
            );
        }
        for (r, n) in s.per_rank_jobs.iter().enumerate() {
            println!("rank {r}:    {n} job(s) committed");
        }
        for (d, (&peak, &budget)) in s
            .peak_reserved_words
            .iter()
            .zip(&s.budget_words)
            .enumerate()
        {
            println!(
                "device {d}:  peak {} of {} budget words reserved ({:.1}%)",
                peak,
                budget,
                100.0 * peak as f64 / budget.max(1) as f64
            );
        }
        print!("{}", slo_table(&report.slo));
        if let Some(p) = &report.postmortem {
            println!("postmortem: {p}  (inspect with `cuts flight`)");
        }
        if mismatched > 0 {
            println!("WARNING: {mismatched} job(s) differ from the serial baseline");
        } else {
            println!(
                "verify:    all {} job result(s) match the serial baseline",
                jobs.len()
            );
        }
        if let Some(journal) = trace.journal() {
            print_profile(&journal.snapshot_sorted());
        }
    }
    // One exposition from both registries: per-run job SLO metrics and
    // the tier-lifetime kernel wall-time histograms.
    if let Some(path) = &opts.metrics_out {
        let mut snap = report.telemetry.snapshot();
        snap.extend(&tier.kernel_telemetry().snapshot());
        std::fs::write(path, snap.render()).map_err(|e| CutsError::io(path, e))?;
        println!("metrics: written to {path}");
    }
    if mismatched > 0 {
        return Err(invalid(
            "serve/serial divergence (jobs differing)",
            mismatched.to_string(),
        ));
    }
    Ok(())
}

/// Parses a batch file: one edit per line (`+ u v` inserts the edge,
/// `- u v` deletes it), `---` commits the batch so far, `#` starts a
/// comment. A trailing unterminated batch commits too; empty batches
/// are dropped.
fn parse_batches(text: &str) -> Result<Vec<EdgeBatch>, CmdError> {
    let mut batches = Vec::new();
    let mut cur = EdgeBatch::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line == "---" {
            if !cur.is_empty() {
                batches.push(std::mem::take(&mut cur));
            }
            continue;
        }
        let bad = || invalid("batch line", format!("{}: {}", lineno + 1, raw.trim()));
        let mut parts = line.split_whitespace();
        let op = parts.next().ok_or_else(bad)?;
        let u: VertexId = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let v: VertexId = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        if parts.next().is_some() {
            return Err(bad());
        }
        match op {
            "+" => cur.insert(u, v),
            "-" => cur.delete(u, v),
            _ => return Err(bad()),
        };
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    Ok(batches)
}

fn run_watch(opts: &WatchOpts) -> Result<(), CmdError> {
    let graph = load(&opts.data, opts.directed)?;
    let text =
        std::fs::read_to_string(&opts.batches).map_err(|e| CutsError::io(&opts.batches, e))?;
    let batches = parse_batches(&text)?;
    if batches.is_empty() {
        return Err(invalid("batch file (no edits)", &opts.batches));
    }

    // A watch tier replicates the live state across ranks so the delta
    // stream survives rank loss; lanes are irrelevant (batches are the
    // unit of work, not jobs).
    let mut builder = ServeConfig::builder()
        .ranks(opts.ranks)
        .lanes(1)
        .device_config(device_config(&opts.device)?);
    if let Some(spec) = &opts.fault_plan {
        builder = builder.fault_plan(FaultPlan::parse(spec)?);
    }
    let tier = ServeTier::new(builder.build()?);
    let mut live = tier.watch(graph);
    let mut watchers = Vec::new();
    for spec in &opts.queries {
        let q = load_query(spec, opts.directed)?;
        watchers.push(live.subscribe(&q)?);
    }
    let json = opts.output == "json";
    if !json {
        println!(
            "watch: {} standing query(ies), {} batch(es), {} rank(s)",
            watchers.len(),
            batches.len(),
            opts.ranks
        );
    }

    let mut added = vec![0u64; watchers.len()];
    let mut removed = vec![0u64; watchers.len()];
    let mut updates_json = Vec::new();
    for batch in &batches {
        live.apply_batch(batch)?;
        for w in &watchers {
            for u in w.drain() {
                let q = u.delta.query.0;
                added[q] += u.delta.added.len() as u64;
                removed[q] += u.delta.removed.len() as u64;
                if json {
                    updates_json.push(Json::obj([
                        ("batch", Json::U64(u.batch)),
                        ("rank", Json::U64(u.rank as u64)),
                        ("query", Json::Str(opts.queries[q].clone())),
                        ("added", Json::U64(u.delta.added.len() as u64)),
                        ("removed", Json::U64(u.delta.removed.len() as u64)),
                        ("dirty_roots", Json::U64(u.delta.dirty_roots as u64)),
                        ("reseeded", Json::U64(u.delta.reseeded as u64)),
                        ("released", Json::U64(u.delta.released_entries as u64)),
                    ]));
                } else {
                    println!(
                        "batch {:>3}  rank {}  {:<12} +{} -{}  ({} dirty roots, {} reseeded, {} entries released)",
                        u.batch,
                        u.rank,
                        opts.queries[q],
                        u.delta.added.len(),
                        u.delta.removed.len(),
                        u.delta.dirty_roots,
                        u.delta.reseeded,
                        u.delta.released_entries
                    );
                }
            }
        }
    }

    // The incremental path must land on exactly the state a cold run
    // over the final graph produces.
    let mut mismatched = 0usize;
    for w in &watchers {
        if live.match_set(w.query) != live.recompute(w.query)? {
            mismatched += 1;
        }
    }

    if json {
        let queries = Json::arr(opts.queries.iter().enumerate().map(|(i, spec)| {
            Json::obj([
                ("query", Json::Str(spec.clone())),
                (
                    "matches",
                    Json::U64(live.match_set(watchers[i].query).len() as u64),
                ),
                ("added", Json::U64(added[i])),
                ("removed", Json::U64(removed[i])),
            ])
        }));
        let root = Json::obj([
            ("batches", Json::U64(batches.len() as u64)),
            ("ranks", Json::U64(opts.ranks as u64)),
            ("lost_ranks", Json::U64(live.lost_ranks())),
            ("queries", queries),
            ("updates", Json::Arr(updates_json)),
            ("slo", live.slo().to_json()),
            ("verified", Json::Bool(mismatched == 0)),
        ]);
        println!("{}", root.render());
    } else {
        for (i, spec) in opts.queries.iter().enumerate() {
            println!(
                "{:<12} {} match(es) after {} batch(es)  (+{} / -{} streamed)",
                spec,
                live.match_set(watchers[i].query).len(),
                batches.len(),
                added[i],
                removed[i]
            );
        }
        if live.lost_ranks() > 0 {
            println!(
                "faults:    {} rank(s) lost mid-stream; {} still live",
                live.lost_ranks(),
                live.live_ranks()
            );
        }
        print!("{}", slo_table(&live.slo()));
        if mismatched == 0 {
            println!(
                "verify:    all {} standing quer{} match a full recompute",
                watchers.len(),
                if watchers.len() == 1 { "y" } else { "ies" }
            );
        }
    }
    if mismatched > 0 {
        return Err(invalid(
            "watch/recompute divergence (queries differing)",
            mismatched.to_string(),
        ));
    }
    Ok(())
}

/// The per-class SLO block of the serve report: one line per job class
/// with completion counts, queue/exec tail quantiles, and deadline
/// accounting. Empty (no header) when telemetry was off or no job ran.
fn slo_table(slo: &cuts_core::SloReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if slo.classes.is_empty() {
        return out;
    }
    let _ = writeln!(
        out,
        "slo:       {:<12} {:>5} {:>5}  {:>21}  {:>21}  {:>9}",
        "class", "ok", "fail", "queue p50/p95/p99 us", "exec p50/p95/p99 us", "ddl hit/miss"
    );
    for c in &slo.classes {
        let _ = writeln!(
            out,
            "           {:<12} {:>5} {:>5}  {:>21}  {:>21}  {:>6}/{}",
            c.class,
            c.completed,
            c.failed,
            format!("{}/{}/{}", c.queue_us[0], c.queue_us[1], c.queue_us[2]),
            format!("{}/{}/{}", c.exec_us[0], c.exec_us[1], c.exec_us[2]),
            c.deadline_hits,
            c.deadline_misses
        );
    }
    out
}

/// `cuts top`: renders the rolling snapshots a serve run wrote (one
/// JSON object per line, `--stats-every`/`--stats-out`) as a table.
fn run_top(path: &str) -> Result<(), CmdError> {
    let text = std::fs::read_to_string(path).map_err(|e| CutsError::io(path, e))?;
    let mut rows = 0usize;
    println!(
        "{:>8} {:>10} {:>6} {:>7} {:>7}  per-class ok/fail, queue/exec p99 us",
        "finished", "wall ms", "defer", "denied", "steals"
    );
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| {
            invalid(
                "stats line (expected --stats-out JSON lines)",
                format!("{path}:{}: {}", i + 1, e.message()),
            )
        })?;
        let u = |key: &str| j.get(key).and_then(Json::as_u64).unwrap_or(0);
        let wall = j.get("wall_millis").and_then(Json::as_f64).unwrap_or(0.0);
        let mut classes = String::new();
        if let Some(arr) = j
            .get("slo")
            .and_then(|s| s.get("classes"))
            .and_then(Json::as_arr)
        {
            for c in arr {
                let g = |key: &str| c.get(key).and_then(Json::as_u64).unwrap_or(0);
                let name = c.get("class").and_then(Json::as_str).unwrap_or("?");
                classes.push_str(&format!(
                    "  {name} {}/{} q{} e{}",
                    g("completed"),
                    g("failed"),
                    g("queue_p99_us"),
                    g("exec_p99_us")
                ));
            }
        }
        println!(
            "{:>8} {:>10.3} {:>6} {:>7} {:>7}{classes}",
            u("finished"),
            wall,
            u("deferrals"),
            u("growth_denials"),
            u("steals")
        );
        rows += 1;
    }
    if rows == 0 {
        println!("no snapshots recorded (run serve with --stats-every <n> --stats-out {path})");
    }
    Ok(())
}

/// `cuts flight`: validate a post-mortem dump and summarise what the
/// recorder saw — an event census plus the tail of the timeline.
fn run_flight(path: &str) -> Result<(), CmdError> {
    let text = std::fs::read_to_string(path).map_err(|e| CutsError::io(path, e))?;
    let (reason, mut events) = flight::parse_dump(&text)
        .map_err(|e| invalid("flight dump", format!("{path}: {}", e.message())))?;
    events.sort_by_key(|e| e.seq);
    println!("flight dump: {path}");
    println!("  reason:  {reason}");
    println!("  events:  {}", events.len());
    let mut census: std::collections::BTreeMap<&str, u64> = Default::default();
    for e in &events {
        *census.entry(e.code.as_str()).or_default() += 1;
    }
    println!("  by code:");
    for (code, n) in &census {
        println!("    {code:<16} {n:>6}");
    }
    const TAIL: usize = 16;
    println!("  last {} event(s):", events.len().min(TAIL));
    for e in events.iter().rev().take(TAIL).rev() {
        let rank = e.rank.map_or("-".to_string(), |r| r.to_string());
        println!(
            "    seq {:>6}  +{:>10} us  rank {rank:>2} lane {:>3}  {:<14} a={} b={}",
            e.seq,
            e.ts_us,
            e.lane,
            e.code.as_str(),
            e.a,
            e.b
        );
    }
    Ok(())
}

/// Renders a match result as a single JSON tree; session stats, when
/// available, are attached as a `"session"` object.
fn to_json(r: &cuts_core::MatchResult, stats: Option<&SessionStats>) -> String {
    let mut root = r.to_json();
    if let Some(s) = stats {
        root.set("session", s.to_json());
    }
    root.render()
}

/// Drains the journal and writes the requested artifacts: the trace file
/// (`--trace-out`), the metrics snapshot (`--metrics-out`), and — for the
/// `profile` subcommand — a per-kernel / per-level breakdown on stdout.
fn finish_trace(
    trace: &Trace,
    opts: &MatchOpts,
    profile: bool,
    matches: u64,
) -> Result<(), CmdError> {
    let Some(journal) = trace.journal() else {
        return Ok(());
    };
    let events = journal.snapshot_sorted();
    if let Some(path) = &opts.trace_out {
        let text = match opts.trace_format.as_str() {
            "jsonl" => jsonl(&events),
            _ => chrome_trace(&events),
        };
        std::fs::write(path, text).map_err(|e| CutsError::io(path, e))?;
        println!("trace: {} event(s) written to {path}", events.len());
    }
    if let Some(path) = &opts.metrics_out {
        std::fs::write(path, metrics_snapshot(&events, matches).render())
            .map_err(|e| CutsError::io(path, e))?;
        println!("metrics: written to {path}");
    }
    if profile {
        print_profile(&events);
    }
    Ok(())
}

/// Sum of a `u64` argument over events, by key.
fn arg_u64(e: &Event, key: &str) -> u64 {
    match e.arg(key) {
        Some(Arg::U64(v)) => *v,
        _ => 0,
    }
}

/// An `f64` argument of an event, by key.
fn arg_f64(e: &Event, key: &str) -> f64 {
    match e.arg(key) {
        Some(Arg::F64(v)) => *v,
        _ => 0.0,
    }
}

/// Aggregates the journal into a Prometheus-style snapshot.
fn metrics_snapshot(events: &[Event], matches: u64) -> MetricsSnapshot {
    use std::collections::BTreeMap;
    let mut snap = MetricsSnapshot::new();
    snap.push_help("cuts_matches_total", matches as f64, "embeddings found");
    let mut by_kind: BTreeMap<&str, u64> = BTreeMap::new();
    // name -> (count, micros, instructions, dram reads)
    let mut kernels: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
    let (mut pool_hits, mut pool_misses) = (0u64, 0u64);
    let (mut arena_carves, mut arena_acquires, mut arena_releases) = (0u64, 0u64, 0u64);
    let (mut arena_grows, mut arena_high_water) = (0u64, 0u64);
    for e in events {
        *by_kind.entry(e.kind.as_str()).or_default() += 1;
        match e.kind {
            EventKind::Kernel if e.dur_us.is_some() && e.counters.is_some() => {
                let c = e.counters.unwrap();
                let k = kernels.entry(e.name.clone()).or_default();
                k.0 += 1;
                k.1 += e.dur_us.unwrap_or(0);
                k.2 += c.instructions;
                k.3 += c.dram_reads;
            }
            EventKind::Pool if e.name == "hit" => pool_hits += 1,
            EventKind::Pool if e.name == "miss" => pool_misses += 1,
            EventKind::Arena => match e.name.as_str() {
                "carve" => arena_carves += 1,
                "acquire" => arena_acquires += 1,
                "release" => arena_releases += 1,
                "chain_grow" => arena_grows += 1,
                "high_water" => {
                    arena_high_water = arena_high_water.max(arg_u64(e, "slabs"));
                }
                _ => {}
            },
            _ => {}
        }
    }
    for (kind, n) in &by_kind {
        snap.push_labeled("cuts_events_total", &[("kind", kind)], *n as f64);
    }
    for (name, (count, micros, instructions, dram_reads)) in &kernels {
        snap.push_labeled("cuts_kernel_launches", &[("kernel", name)], *count as f64);
        snap.push_labeled("cuts_kernel_micros", &[("kernel", name)], *micros as f64);
        snap.push_labeled(
            "cuts_kernel_instructions",
            &[("kernel", name)],
            *instructions as f64,
        );
        snap.push_labeled(
            "cuts_kernel_dram_reads",
            &[("kernel", name)],
            *dram_reads as f64,
        );
    }
    snap.push_help(
        "cuts_pool_hits_total",
        pool_hits as f64,
        "buffer-pool acquires served by recycling",
    );
    snap.push_help(
        "cuts_pool_misses_total",
        pool_misses as f64,
        "buffer-pool acquires that hit the device allocator",
    );
    snap.push_help(
        "cuts_arena_carves_total",
        arena_carves as f64,
        "device allocations backing an arena (one per session)",
    );
    snap.push_help(
        "cuts_arena_slab_acquires_total",
        arena_acquires as f64,
        "slabs handed out by arena classes",
    );
    snap.push_help(
        "cuts_arena_slab_releases_total",
        arena_releases as f64,
        "slabs returned to arena classes",
    );
    snap.push_help(
        "cuts_arena_chain_grows_total",
        arena_grows as f64,
        "in-place trie chain growth steps",
    );
    snap.push_help(
        "cuts_arena_high_water_slabs",
        arena_high_water as f64,
        "peak concurrently-held slabs in any class",
    );
    snap
}

/// Prints the [`profile_report`] for a drained journal.
fn print_profile(events: &[Event]) {
    print!("{}", profile_report(events));
}

/// The `cuts profile` report: per-kernel and per-level aggregates plus an
/// event census, from one journal drain. An empty journal renders a
/// clean one-line report instead of a skeleton of empty sections.
fn profile_report(events: &[Event]) -> String {
    use std::collections::BTreeMap;
    use std::fmt::Write as _;
    let mut out = String::new();
    if events.is_empty() {
        let _ = writeln!(out, "profile: no events recorded");
        let _ = writeln!(
            out,
            "  (the run emitted no journal events; nothing to aggregate)"
        );
        return out;
    }
    // kernel name -> (launches, micros, instructions, dram reads)
    let mut kernels: BTreeMap<String, (u64, u64, u64, u64)> = BTreeMap::new();
    // level name -> (steps, micros, paths)
    let mut levels: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    let mut census: BTreeMap<&str, u64> = BTreeMap::new();
    let mut ranks = std::collections::BTreeSet::new();
    // scheduler lifecycle: event name -> count, plus queue/exec time sums
    let mut job_counts: BTreeMap<String, u64> = BTreeMap::new();
    let (mut queue_ms, mut exec_ms) = (0.0f64, 0.0f64);
    // plan-time kernel policy: level pos -> (method, chi, est first, times)
    let mut policy: BTreeMap<u64, (String, u64, u64, u64)> = BTreeMap::new();
    let (mut prefilter_on, mut prefilter_off) = (0u64, 0u64);
    let (mut plan_hits, mut plan_builds) = (0u64, 0u64);
    // arena event name -> count, plus the slab high-water mark
    let mut arena_counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut arena_high_water = 0u64;
    for e in events {
        *census.entry(e.kind.as_str()).or_default() += 1;
        if let Some(r) = e.rank {
            ranks.insert(r);
        }
        match e.kind {
            // Per-block spans (SM lanes) carry block counters; skip them
            // here so launch totals are not double counted.
            EventKind::Kernel if e.arg("blocks").is_some() => {
                let c = e.counters.unwrap_or_default();
                let k = kernels.entry(e.name.clone()).or_default();
                k.0 += 1;
                k.1 += e.dur_us.unwrap_or(0);
                k.2 += c.instructions;
                k.3 += c.dram_reads;
            }
            EventKind::Level => {
                let l = levels.entry(e.name.clone()).or_default();
                l.0 += 1;
                l.1 += e.dur_us.unwrap_or(0);
                l.2 += arg_u64(e, "paths");
            }
            EventKind::Plan => match e.name.as_str() {
                "hit" => plan_hits += 1,
                "miss" => plan_builds += 1,
                _ => {}
            },
            EventKind::Job => {
                *job_counts.entry(e.name.clone()).or_default() += 1;
                if e.name == "complete" {
                    queue_ms += arg_f64(e, "queue_ms");
                    exec_ms += arg_f64(e, "exec_ms");
                }
            }
            EventKind::Arena => {
                *arena_counts.entry(e.name.clone()).or_default() += 1;
                if e.name == "high_water" {
                    arena_high_water = arena_high_water.max(arg_u64(e, "slabs"));
                }
            }
            EventKind::Policy => match e.name.as_str() {
                "prefilter_on" => prefilter_on += 1,
                "prefilter_off" => prefilter_off += 1,
                method => {
                    let p = policy.entry(arg_u64(e, "pos")).or_insert_with(|| {
                        (
                            method.to_string(),
                            arg_u64(e, "constraints"),
                            arg_u64(e, "est_first_len"),
                            0,
                        )
                    });
                    p.3 += 1;
                }
            },
            _ => {}
        }
    }
    let _ = writeln!(
        out,
        "profile: {} event(s), {} rank(s)",
        events.len(),
        ranks.len()
    );
    let _ = writeln!(out, "  per kernel:");
    for (name, (launches, micros, instructions, dram_reads)) in &kernels {
        let _ = writeln!(
            out,
            "    {name:<16} {launches:>6} launch(es) {:>9.3} ms  {instructions:>10} instr  {dram_reads:>10} dram reads",
            *micros as f64 / 1e3
        );
    }
    let _ = writeln!(out, "  per level:");
    for (name, (steps, micros, paths)) in &levels {
        let _ = writeln!(
            out,
            "    {name:<16} {steps:>6} step(s)    {:>9.3} ms  {paths:>10} paths",
            *micros as f64 / 1e3
        );
    }
    if plan_hits + plan_builds > 0 {
        // Guarded: a warm-started session can report hits with zero
        // builds, and a snapshot-seeded run can even skip lookups
        // entirely — never divide by the build count.
        let _ = writeln!(
            out,
            "  plans:   {plan_builds} built, {plan_hits} cache hit(s) ({} reused)",
            reuse_pct(plan_hits, plan_builds)
        );
    }
    if !job_counts.is_empty() {
        let _ = writeln!(out, "  scheduler jobs:");
        for (name, n) in &job_counts {
            let _ = writeln!(out, "    {name:<16} {n:>6}");
        }
        let completed = *job_counts.get("complete").unwrap_or(&0);
        if completed > 0 {
            let _ = writeln!(
            out,
                "    queue vs exec:   {:.3} ms queued, {:.3} ms executing (mean {:.3} / {:.3} ms per job)",
                queue_ms,
                exec_ms,
                queue_ms / completed as f64,
                exec_ms / completed as f64
            );
        }
    }
    if !arena_counts.is_empty() {
        let _ = writeln!(out, "  arena slabs:");
        for (name, n) in &arena_counts {
            let _ = writeln!(out, "    {name:<16} {n:>6}");
        }
        if arena_high_water > 0 {
            let _ = writeln!(
                out,
                "    high water:      {arena_high_water:>6} slab(s) held at once"
            );
        }
    }
    if !policy.is_empty() || prefilter_on + prefilter_off > 0 {
        let _ = writeln!(out, "  kernel policy:");
        for (pos, (method, chi, est, times)) in &policy {
            let _ = writeln!(
            out,
                "    level {pos:<2} chi={chi:<2} -> {method:<9} (est first {est}, decided {times}x)"
            );
        }
        if prefilter_on + prefilter_off > 0 {
            let _ = writeln!(
                out,
                "    signature prefilter: {} (on {prefilter_on}x / off {prefilter_off}x)",
                if prefilter_on > 0 {
                    "active"
                } else {
                    "disabled"
                }
            );
        }
    }
    let _ = writeln!(out, "  events by kind:");
    for (kind, n) in &census {
        let _ = writeln!(out, "    {kind:<16} {n:>6}");
    }
    out
}

fn report(
    r: &cuts_core::MatchResult,
    stats: Option<&SessionStats>,
    output: &str,
) -> Result<(), CmdError> {
    match output {
        "json" => {
            println!("{}", to_json(r, stats));
            return Ok(());
        }
        "text" => {}
        other => return Err(invalid("output format", other)),
    }
    report_text(r, stats);
    Ok(())
}

fn report_text(r: &cuts_core::MatchResult, stats: Option<&SessionStats>) {
    println!("matches: {}", r.num_matches);
    println!("paths/depth: {:?}", r.level_counts);
    println!(
        "storage: {} trie words (naive would be {})",
        r.cuts_words(),
        r.naive_words()
    );
    println!(
        "counters: {} dram reads / {} writes, {} atomics, {} instructions",
        r.counters.dram_reads, r.counters.dram_writes, r.counters.atomics, r.counters.instructions
    );
    println!(
        "simulated: {:.3} ms   (host wall {:.3} ms; chunked: {})",
        r.sim_millis, r.wall_millis, r.used_chunking
    );
    if let Some(s) = stats {
        match &s.arena {
            Some(a) => println!(
                "plan: {} built / {} cache hit(s) ({} reused); arena: {} carve(s), {} slab acquire(s), {} words high water",
                s.plans.misses,
                s.plans.hits,
                reuse_pct(s.plans.hits, s.plans.misses),
                a.device_allocs,
                a.slab_acquires(),
                a.high_water_words(),
            ),
            None => println!(
                "plan: {} built / {} cache hit(s) ({} reused); arena: not carved",
                s.plans.misses,
                s.plans.hits,
                reuse_pct(s.plans.hits, s.plans.misses),
            ),
        }
    }
}

/// Cache-reuse percentage as text. A session that never planned — a warm
/// start whose every query was seeded from a snapshot — has zero lookups
/// and renders `-` instead of dividing by zero.
fn reuse_pct(hits: u64, misses: u64) -> String {
    let total = hits + misses;
    if total == 0 {
        return "-".into();
    }
    format!("{:.0}%", 100.0 * hits as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_specs_parse() {
        assert_eq!(load_query("clique:4", false).unwrap().num_vertices(), 4);
        assert_eq!(load_query("chain:6", false).unwrap().num_input_edges(), 5);
        assert!(load_query("hexagon:4", false).is_err());
        assert!(load_query("clique:99", false).is_err());
    }

    #[test]
    fn dataset_names_resolve() {
        let src = DataSource::Dataset {
            name: "roadnet-ca".into(),
            scale: "tiny".into(),
        };
        let g = load(&src, false).unwrap();
        assert!(g.num_vertices() > 100);
        let bad = DataSource::Dataset {
            name: "nope".into(),
            scale: "tiny".into(),
        };
        assert!(load(&bad, false).is_err());
    }

    #[test]
    fn device_names_resolve() {
        assert_eq!(device_config("a100").unwrap().num_sms, 108);
        assert!(device_config("h100").is_err());
    }

    #[test]
    fn end_to_end_match_command() {
        let opts = MatchOpts {
            data: DataSource::Dataset {
                name: "enron".into(),
                scale: "tiny".into(),
            },
            query: "clique:3".into(),
            directed: false,
            device: "test".into(),
            engine: "cuts".into(),
            ranks: 1,
            enumerate: 0,
            chunk: 512,
            labels: None,
            output: "text".into(),
            plan_cache: 16,
            fault_plan: None,
            rank_timeout_ms: None,
            partition: None,
            trace_out: None,
            trace_format: "chrome".into(),
            trace_per_block: false,
            metrics_out: None,
            intersect: "auto".into(),
            no_prefilter: false,
        };
        run_match(&opts, false).unwrap();
        // Distributed path too.
        let opts = MatchOpts { ranks: 2, ..opts };
        run_match(&opts, false).unwrap();
        // Every pinned micro-kernel arm must run end to end.
        for arm in ["c", "p", "bitmap"] {
            let opts = MatchOpts {
                ranks: 1,
                intersect: arm.into(),
                no_prefilter: true,
                ..opts.clone()
            };
            run_match(&opts, false).unwrap();
        }
    }

    #[test]
    fn end_to_end_serve_command() {
        let dir = std::env::temp_dir().join("cuts_cli_serve_test");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("jobs.txt");
        std::fs::write(
            &manifest,
            "mesh:4x4 clique:3 repeat=3\nmesh:4x4 chain:3 priority=2\ner:24:60:7 cycle:4 name=ring\n",
        )
        .unwrap();
        let opts = ServeOpts {
            jobs: manifest.to_string_lossy().into_owned(),
            ranks: 1,
            devices: 1,
            lanes: 2,
            queue: 16,
            aging_ms: 5,
            pacing: 0.0,
            device: "test".into(),
            output: "json".into(),
            snapshot: None,
            stats_every: 0,
            stats_out: None,
            metrics_out: None,
            fault_plan: None,
            submit_timeout_ms: None,
            quick: false,
        };
        run_serve(&opts).unwrap();
        // A manifest with no jobs is a typed error, not a panic.
        std::fs::write(&manifest, "# comments only\n").unwrap();
        assert!(matches!(run_serve(&opts), Err(CutsError::Invalid { .. })));
    }

    #[test]
    fn serve_multi_rank_survives_a_rank_crash() {
        let dir = std::env::temp_dir().join("cuts_cli_serve_ranks_test");
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.join("jobs.txt");
        std::fs::write(
            &manifest,
            "mesh:4x4 clique:3 repeat=4\nmesh:4x4 chain:3 repeat=3\ner:24:60:7 cycle:4 name=ring\n",
        )
        .unwrap();
        // Two ranks, one dies after its first job: the stream must still
        // drain completely, byte-identical to the serial baseline (the
        // in-command verify fails the run otherwise).
        run_serve(&ServeOpts {
            jobs: manifest.to_string_lossy().into_owned(),
            ranks: 2,
            devices: 1,
            lanes: 2,
            queue: 16,
            aging_ms: 5,
            pacing: 20.0,
            device: "test".into(),
            output: "json".into(),
            snapshot: None,
            stats_every: 0,
            stats_out: None,
            metrics_out: None,
            fault_plan: Some("crash:1@1".into()),
            submit_timeout_ms: None,
            quick: false,
        })
        .unwrap();
        // A bounded submit wait on an uncontended queue also drains fine.
        run_serve(&ServeOpts {
            jobs: manifest.to_string_lossy().into_owned(),
            ranks: 2,
            devices: 1,
            lanes: 1,
            queue: 16,
            aging_ms: 5,
            pacing: 0.0,
            device: "test".into(),
            output: "text".into(),
            snapshot: None,
            stats_every: 0,
            stats_out: None,
            metrics_out: None,
            fault_plan: None,
            submit_timeout_ms: Some(5_000),
            quick: false,
        })
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn serve_telemetry_artifacts_end_to_end() {
        let dir = std::env::temp_dir().join("cuts_cli_serve_telemetry_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Post-mortems land here instead of the shared temp dir so the
        // test can enumerate exactly what this run produced.
        std::env::set_var("CUTS_FLIGHT_DIR", &dir);
        let manifest = dir.join("jobs.txt");
        // The er:6:3:1 query is disconnected (6 vertices, 3 edges), so
        // both the serial baseline and the scheduled run fail that job —
        // which must trip the flight recorder's post-mortem dump.
        std::fs::write(
            &manifest,
            "mesh:4x4 clique:3 repeat=4 class=gold\nmesh:4x4 chain:3 class=steel\nmesh:3x3 er:6:3:1 name=bad\n",
        )
        .unwrap();
        let stats_path = dir.join("stats.jsonl");
        let metrics_path = dir.join("metrics.prom");
        run_serve(&ServeOpts {
            jobs: manifest.to_string_lossy().into_owned(),
            ranks: 1,
            devices: 1,
            lanes: 2,
            queue: 16,
            aging_ms: 5,
            pacing: 0.0,
            device: "test".into(),
            output: "text".into(),
            snapshot: None,
            stats_every: 2,
            stats_out: Some(stats_path.to_string_lossy().into_owned()),
            metrics_out: Some(metrics_path.to_string_lossy().into_owned()),
            fault_plan: None,
            submit_timeout_ms: None,
            quick: false,
        })
        .unwrap();
        std::env::remove_var("CUTS_FLIGHT_DIR");
        // Rolling snapshots: JSON lines that `cuts top` renders.
        let stats = std::fs::read_to_string(&stats_path).unwrap();
        assert!(!stats.trim().is_empty(), "rolling snapshots written");
        for line in stats.lines() {
            let j = Json::parse(line).unwrap();
            assert!(j.get("finished").is_some());
            assert!(j.get("slo").is_some());
        }
        run_top(&stats_path.to_string_lossy()).unwrap();
        // Merged exposition: job SLO histograms and kernel wall-time
        // histograms in one scrape, parseable by a real scraper.
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        cuts_obs::validate_exposition(&prom).unwrap();
        assert!(prom.contains("cuts_job_queue_us"));
        assert!(prom.contains("cuts_job_exec_us"));
        assert!(prom.contains("cuts_kernel_wall_us"));
        assert!(prom.contains("class=\"gold\""));
        // The failed job produced a parseable post-mortem dump.
        let dumps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("cuts-postmortem-"))
            })
            .collect();
        assert!(!dumps.is_empty(), "job failure wrote a post-mortem dump");
        let text = std::fs::read_to_string(&dumps[0]).unwrap();
        let (reason, events) = flight::parse_dump(&text).unwrap();
        assert_eq!(reason, "job_failure");
        assert!(events.iter().any(|e| e.code == FlightCode::JobFail));
        run_flight(&dumps[0].to_string_lossy()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn top_rejects_garbage_and_flight_rejects_non_dumps() {
        let dir = std::env::temp_dir().join("cuts_cli_top_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        assert!(matches!(
            run_top(&bad.to_string_lossy()),
            Err(CutsError::Invalid { .. })
        ));
        assert!(matches!(
            run_flight(&bad.to_string_lossy()),
            Err(CutsError::Invalid { .. })
        ));
        // An empty snapshot file renders the hint, not an error.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        run_top(&empty.to_string_lossy()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_report_handles_empty_trace() {
        let report = profile_report(&[]);
        assert!(report.contains("no events recorded"));
        // No skeleton sections on an empty journal.
        assert!(!report.contains("per kernel"));
        assert!(!report.contains("events by kind"));
    }

    #[test]
    fn parse_batches_splits_on_separators_and_rejects_garbage() {
        let text = "\
# warm-up edits
+ 0 4   # diagonal
+ 1 5
---
- 0 4
---
+ 2 6\n";
        let batches = parse_batches(text).unwrap();
        assert_eq!(batches.len(), 3, "trailing unterminated batch commits");
        assert_eq!(batches[0].inserts(), &[(0, 4), (1, 5)]);
        assert_eq!(batches[1].deletes(), &[(0, 4)]);
        assert_eq!(batches[2].inserts(), &[(2, 6)]);
        // Comment-only input and doubled separators produce no batches.
        assert!(parse_batches("# nothing\n---\n---\n").unwrap().is_empty());
        // Malformed lines report their line number.
        for bad in ["* 1 2", "+ 1", "+ 1 2 3", "+ x 2"] {
            let err = parse_batches(bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    CutsError::Invalid {
                        what: "batch line",
                        ..
                    }
                ),
                "{bad}: {err}"
            );
        }
    }

    #[test]
    fn watch_end_to_end_streams_deltas_and_verifies() {
        let dir = std::env::temp_dir().join("cuts_cli_watch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let graph = dir.join("mesh.txt");
        // 2x3 mesh: vertices 0..6, no triangles until the diagonal lands.
        std::fs::write(&graph, "0 1\n1 2\n3 4\n4 5\n0 3\n1 4\n2 5\n").unwrap();
        let edits = dir.join("edits.txt");
        std::fs::write(&edits, "+ 0 4\n---\n- 0 4\n").unwrap();
        let opts = WatchOpts {
            data: DataSource::File(graph.to_string_lossy().into_owned()),
            queries: vec!["clique:3".into()],
            batches: edits.to_string_lossy().into_owned(),
            ranks: 2,
            directed: false,
            device: "test".into(),
            output: "json".into(),
            fault_plan: Some("crash:0@1".into()),
        };
        run_watch(&opts).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slo_table_renders_classes() {
        assert_eq!(slo_table(&cuts_core::SloReport::default()), "");
        let slo = cuts_core::SloReport {
            classes: vec![cuts_core::ClassSlo {
                class: "gold".into(),
                completed: 4,
                failed: 1,
                queue_us: [10, 20, 30],
                exec_us: [100, 200, 300],
                deadline_hits: 3,
                deadline_misses: 1,
            }],
        };
        let table = slo_table(&slo);
        assert!(table.contains("gold"));
        assert!(table.contains("10/20/30"));
        assert!(table.contains("100/200/300"));
    }

    #[test]
    fn reuse_pct_guards_zero_lookups() {
        assert_eq!(reuse_pct(0, 0), "-");
        assert_eq!(reuse_pct(3, 1), "75%");
        assert_eq!(reuse_pct(5, 0), "100%");
    }

    #[test]
    fn end_to_end_snapshot_commands() {
        let dir = std::env::temp_dir().join("cuts_cli_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("warm.snap").to_string_lossy().into_owned();
        run_snapshot_build(&SnapshotBuildOpts {
            data: DataSource::Dataset {
                name: "enron".into(),
                scale: "tiny".into(),
            },
            out: out.clone(),
            queries: vec!["clique:3".into(), "chain:3".into()],
            device: "test".into(),
            directed: false,
            store_tries: true,
        })
        .unwrap();
        run_snapshot_inspect(&out).unwrap();
        // Warm match: graph and plan come from the container.
        let opts = MatchOpts {
            data: DataSource::Snapshot(out.clone()),
            query: "clique:3".into(),
            directed: false,
            device: "test".into(),
            engine: "cuts".into(),
            ranks: 1,
            enumerate: 0,
            chunk: 512,
            labels: None,
            output: "text".into(),
            plan_cache: 16,
            fault_plan: None,
            rank_timeout_ms: None,
            partition: None,
            trace_out: None,
            trace_format: "chrome".into(),
            trace_per_block: false,
            metrics_out: None,
            intersect: "auto".into(),
            no_prefilter: false,
        };
        run_match(&opts, false).unwrap();
        // `stats` resolves the snapshot source too.
        run(Command::Stats {
            data: DataSource::Snapshot(out.clone()),
            directed: false,
        })
        .unwrap();
        // Warm serve: every job runs against the snapshot's graph.
        let manifest = dir.join("jobs.txt");
        std::fs::write(&manifest, "mesh:4x4 clique:3 repeat=2\nmesh:4x4 chain:3\n").unwrap();
        run_serve(&ServeOpts {
            jobs: manifest.to_string_lossy().into_owned(),
            ranks: 1,
            devices: 1,
            lanes: 2,
            queue: 16,
            aging_ms: 5,
            pacing: 0.0,
            device: "test".into(),
            output: "json".into(),
            snapshot: Some(out.clone()),
            stats_every: 0,
            stats_out: None,
            metrics_out: None,
            fault_plan: None,
            submit_timeout_ms: None,
            quick: false,
        })
        .unwrap();
        // A corrupt container surfaces as a typed snapshot error.
        let mut bytes = std::fs::read(&out).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let bad = dir.join("bad.snap").to_string_lossy().into_owned();
        std::fs::write(&bad, &bytes).unwrap();
        assert!(matches!(
            run_snapshot_inspect(&bad),
            Err(CutsError::Snapshot(_))
        ));
    }

    #[test]
    fn end_to_end_match_with_fault_plan() {
        let opts = MatchOpts {
            data: DataSource::Dataset {
                name: "enron".into(),
                scale: "tiny".into(),
            },
            query: "clique:3".into(),
            directed: false,
            device: "test".into(),
            engine: "cuts".into(),
            ranks: 2,
            enumerate: 0,
            chunk: 64,
            labels: None,
            output: "text".into(),
            plan_cache: 16,
            fault_plan: Some("crash:1@0, drop:0->1@2".into()),
            rank_timeout_ms: Some(40),
            partition: None,
            trace_out: None,
            trace_format: "chrome".into(),
            trace_per_block: false,
            metrics_out: None,
            intersect: "auto".into(),
            no_prefilter: false,
        };
        run_match(&opts, false).unwrap();
    }
}
