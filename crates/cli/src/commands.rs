//! Command implementations.

use cuts_baseline::{vf2, GsiEngine, GunrockEngine};
use cuts_core::{EngineConfig, ExecSession, SessionStats};
use cuts_dist::{run_distributed, DistConfig, FaultPlan};
use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_graph::generators::{chain, clique, cycle, star};
use cuts_graph::labels::{degree_band_labels, random_labels, zipf_labels};
use cuts_graph::stats::{degree_histogram, stats};
use cuts_graph::{edgelist, query_set, Dataset, Graph, Scale};

use crate::args::{Command, DataSource, MatchOpts, USAGE};

/// Top-level command error.
pub type CmdError = Box<dyn std::error::Error>;

/// Executes a parsed command.
pub fn run(cmd: Command) -> Result<(), CmdError> {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Queries { n, top } => {
            for q in query_set(n, top) {
                let edges: Vec<_> = q.graph.edges().filter(|(u, v)| u < v).collect();
                println!("{}: {} edges {:?}", q.name, q.num_edges, edges);
            }
            Ok(())
        }
        Command::Stats { data, directed } => {
            let g = load(&data, directed)?;
            let s = stats(&g);
            println!("vertices:        {}", s.vertices);
            println!("arcs:            {}", s.arcs);
            println!("input edges:     {}", s.input_edges);
            println!("max out-degree:  {}", s.max_out_degree);
            println!("max in-degree:   {}", s.max_in_degree);
            println!("avg out-degree:  {:.3}", s.avg_out_degree);
            println!("p99 out-degree:  {}", s.p99_out_degree);
            let hist = degree_histogram(&g);
            println!("degree histogram (pow-2 buckets): {hist:?}");
            Ok(())
        }
        Command::Match(opts) => run_match(&opts),
    }
}

/// Resolves a data source into a graph.
fn load(src: &DataSource, directed: bool) -> Result<Graph, CmdError> {
    match src {
        DataSource::File(path) => Ok(if directed {
            edgelist::load_directed(path)?
        } else {
            edgelist::load_undirected(path)?
        }),
        DataSource::Dataset { name, scale } => {
            let ds = match name.to_lowercase().as_str() {
                "enron" => Dataset::Enron,
                "gowalla" => Dataset::Gowalla,
                "roadnet-pa" => Dataset::RoadNetPA,
                "roadnet-tx" => Dataset::RoadNetTX,
                "roadnet-ca" => Dataset::RoadNetCA,
                "wikitalk" => Dataset::WikiTalk,
                other => return Err(format!("unknown dataset {other}").into()),
            };
            let sc = match scale.as_str() {
                "tiny" => Scale::Tiny,
                "small" => Scale::Small,
                "medium" => Scale::Medium,
                "paper" => Scale::Paper,
                other => return Err(format!("unknown scale {other}").into()),
            };
            Ok(ds.generate(sc))
        }
    }
}

/// Parses a query spec (`clique:K` etc. or a file path).
fn load_query(spec: &str, directed: bool) -> Result<Graph, CmdError> {
    if let Some((kind, k)) = spec.split_once(':') {
        let k: usize = k.parse().map_err(|_| format!("bad query size in {spec}"))?;
        if !(1..=12).contains(&k) {
            return Err("query size must be in 1..=12".into());
        }
        return Ok(match kind {
            "clique" => clique(k),
            "chain" => chain(k),
            "cycle" => cycle(k),
            "star" => star(k),
            other => return Err(format!("unknown query kind {other}").into()),
        });
    }
    load(&DataSource::File(spec.to_string()), directed)
}

fn device_config(name: &str) -> Result<DeviceConfig, CmdError> {
    Ok(match name {
        "v100" => DeviceConfig::v100_like(),
        "a100" => DeviceConfig::a100_like(),
        "test" => DeviceConfig::test_small(),
        other => return Err(format!("unknown device {other}").into()),
    })
}

/// Attaches labels per the `--labels` spec to both graphs (same label
/// alphabet, deterministic seeds).
fn apply_labels(spec: &str, data: Graph, query: Graph) -> Result<(Graph, Graph), CmdError> {
    let nd = data.num_vertices();
    let nq = query.num_vertices();
    let (dl, ql) = if let Some((kind, k)) = spec.split_once(':') {
        let k: u32 = k
            .parse()
            .map_err(|_| format!("bad label count in {spec}"))?;
        if k == 0 {
            return Err("label count must be positive".into());
        }
        match kind {
            "random" => (random_labels(nd, k, 11), random_labels(nq, k, 13)),
            "zipf" => (zipf_labels(nd, k, 11), zipf_labels(nq, k, 13)),
            other => return Err(format!("unknown label scheme {other}").into()),
        }
    } else if spec == "bands" {
        (degree_band_labels(&data, 8), degree_band_labels(&query, 8))
    } else {
        return Err(format!("unknown label spec {spec}").into());
    };
    Ok((data.with_labels(dl), query.with_labels(ql)))
}

fn run_match(opts: &MatchOpts) -> Result<(), CmdError> {
    let mut data = load(&opts.data, opts.directed)?;
    let mut query = load_query(&opts.query, opts.directed)?;
    if let Some(spec) = &opts.labels {
        (data, query) = apply_labels(spec, data, query)?;
    }
    println!(
        "data: {} vertices / {} arcs; query: {} vertices / {} arcs",
        data.num_vertices(),
        data.num_edges(),
        query.num_vertices(),
        query.num_edges()
    );
    let dev_cfg = device_config(&opts.device)?;

    if opts.ranks > 1 {
        if opts.engine != "cuts" {
            return Err("--ranks > 1 is only supported with --engine cuts".into());
        }
        let mut config = DistConfig {
            device: dev_cfg,
            dist_chunk: opts.chunk,
            ..Default::default()
        };
        if let Some(spec) = &opts.fault_plan {
            config.fault_plan = FaultPlan::parse(spec)?;
            config.fault_plan.check_ranks(opts.ranks)?;
        }
        if let Some(ms) = opts.rank_timeout_ms {
            config.rank_timeout = std::time::Duration::from_millis(ms);
        }
        let r = run_distributed(&data, &query, opts.ranks, &config)?;
        println!("matches: {}", r.total_matches);
        println!(
            "makespan: {:.3} sim-ms over {} ranks (balance {:.2})",
            r.makespan_sim_millis(),
            opts.ranks,
            r.balance_ratio()
        );
        for m in &r.per_rank {
            if m.lost {
                println!(
                    "  rank {}: LOST (work recovered by surviving ranks)",
                    m.rank
                );
                continue;
            }
            println!(
                "  rank {}: {:>10} matches, {:>8.3} sim-ms, {} jobs, {}/{} donations out/in, {} plan build(s) / {} reuse(s)",
                m.rank,
                m.matches,
                m.busy_sim_millis,
                m.jobs_processed,
                m.donations_sent,
                m.donations_received,
                m.plan_builds,
                m.plan_reuses
            );
        }
        if !r.recovery.is_clean() {
            println!(
                "recovery: {} rank(s) lost {:?}, {} chunk(s) reassigned, {} duplicate(s) discarded",
                r.recovery.ranks_lost,
                r.recovery.lost_ranks,
                r.recovery.chunks_reassigned,
                r.recovery.duplicate_chunks
            );
            println!(
                "          {} message(s) dropped, {} delayed; recovered in {:.1} ms",
                r.recovery.messages_dropped,
                r.recovery.messages_delayed,
                r.recovery.recovery_millis
            );
        }
        return Ok(());
    }

    match opts.engine.as_str() {
        "vf2" => {
            let start = std::time::Instant::now();
            let count = vf2::count(&data, &query);
            println!("matches: {count}");
            println!("cpu wall: {:.3} ms", start.elapsed().as_secs_f64() * 1e3);
        }
        "cuts" => {
            let device = Device::new(dev_cfg);
            let session = ExecSession::with_cache_capacity(
                &device,
                EngineConfig::default().with_chunk_size(opts.chunk),
                opts.plan_cache,
            );
            let r = if opts.enumerate > 0 {
                let mut shown = 0usize;
                session.run_enumerate(&data, &query, &mut |m| {
                    if shown < opts.enumerate {
                        println!("  {m:?}");
                        shown += 1;
                    }
                })?
            } else {
                session.run(&data, &query)?
            };
            report(&r, Some(&session.stats()), &opts.output)?;
        }
        "gsi" => {
            let device = Device::new(dev_cfg);
            report(
                &GsiEngine::new(&device).run(&data, &query)?,
                None,
                &opts.output,
            )?;
        }
        "gunrock" => {
            let device = Device::new(dev_cfg);
            report(
                &GunrockEngine::new(&device).run(&data, &query)?,
                None,
                &opts.output,
            )?;
        }
        other => return Err(format!("unknown engine {other}").into()),
    }
    Ok(())
}

/// Renders a match result as a single JSON object (hand-rolled; every
/// field is numeric or boolean, so no escaping is needed). Session stats,
/// when available, are attached as a `"session"` object.
fn to_json(r: &cuts_core::MatchResult, stats: Option<&SessionStats>) -> String {
    let levels: Vec<String> = r.level_counts.iter().map(u64::to_string).collect();
    let session = stats.map(session_json).unwrap_or_default();
    format!(
        concat!(
            "{{\"matches\":{},\"level_counts\":[{}],\"cuts_words\":{},",
            "\"naive_words\":{},\"sim_millis\":{},\"wall_millis\":{},",
            "\"used_chunking\":{},\"counters\":{{\"dram_reads\":{},",
            "\"dram_writes\":{},\"shmem_reads\":{},\"shmem_writes\":{},",
            "\"atomics\":{},\"instructions\":{}}}{}}}"
        ),
        r.num_matches,
        levels.join(","),
        r.cuts_words(),
        r.naive_words(),
        r.sim_millis,
        r.wall_millis,
        r.used_chunking,
        r.counters.dram_reads,
        r.counters.dram_writes,
        r.counters.shmem_reads,
        r.counters.shmem_writes,
        r.counters.atomics,
        r.counters.instructions,
        session,
    )
}

fn session_json(s: &SessionStats) -> String {
    format!(
        concat!(
            ",\"session\":{{\"runs\":{},\"plan_builds\":{},\"plan_hits\":{},",
            "\"plan_evictions\":{},\"pool_device_allocs\":{},\"pool_reuses\":{},",
            "\"trie_entries\":{}}}"
        ),
        s.runs,
        s.plans.misses,
        s.plans.hits,
        s.plans.evictions,
        s.pool.device_allocs,
        s.pool.reuses,
        s.trie_entries.unwrap_or(0),
    )
}

fn report(
    r: &cuts_core::MatchResult,
    stats: Option<&SessionStats>,
    output: &str,
) -> Result<(), CmdError> {
    match output {
        "json" => {
            println!("{}", to_json(r, stats));
            return Ok(());
        }
        "text" => {}
        other => return Err(format!("unknown output format {other}").into()),
    }
    report_text(r, stats);
    Ok(())
}

fn report_text(r: &cuts_core::MatchResult, stats: Option<&SessionStats>) {
    println!("matches: {}", r.num_matches);
    println!("paths/depth: {:?}", r.level_counts);
    println!(
        "storage: {} trie words (naive would be {})",
        r.cuts_words(),
        r.naive_words()
    );
    println!(
        "counters: {} dram reads / {} writes, {} atomics, {} instructions",
        r.counters.dram_reads, r.counters.dram_writes, r.counters.atomics, r.counters.instructions
    );
    println!(
        "simulated: {:.3} ms   (host wall {:.3} ms; chunked: {})",
        r.sim_millis, r.wall_millis, r.used_chunking
    );
    if let Some(s) = stats {
        println!(
            "plan: {} built / {} cache hit(s); pool: {} device alloc(s), {} reuse(s)",
            s.plans.misses, s.plans.hits, s.pool.device_allocs, s.pool.reuses
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_specs_parse() {
        assert_eq!(load_query("clique:4", false).unwrap().num_vertices(), 4);
        assert_eq!(load_query("chain:6", false).unwrap().num_input_edges(), 5);
        assert!(load_query("hexagon:4", false).is_err());
        assert!(load_query("clique:99", false).is_err());
    }

    #[test]
    fn dataset_names_resolve() {
        let src = DataSource::Dataset {
            name: "roadnet-ca".into(),
            scale: "tiny".into(),
        };
        let g = load(&src, false).unwrap();
        assert!(g.num_vertices() > 100);
        let bad = DataSource::Dataset {
            name: "nope".into(),
            scale: "tiny".into(),
        };
        assert!(load(&bad, false).is_err());
    }

    #[test]
    fn device_names_resolve() {
        assert_eq!(device_config("a100").unwrap().num_sms, 108);
        assert!(device_config("h100").is_err());
    }

    #[test]
    fn end_to_end_match_command() {
        let opts = MatchOpts {
            data: DataSource::Dataset {
                name: "enron".into(),
                scale: "tiny".into(),
            },
            query: "clique:3".into(),
            directed: false,
            device: "test".into(),
            engine: "cuts".into(),
            ranks: 1,
            enumerate: 0,
            chunk: 512,
            labels: None,
            output: "text".into(),
            plan_cache: 16,
            fault_plan: None,
            rank_timeout_ms: None,
        };
        run_match(&opts).unwrap();
        // Distributed path too.
        let opts = MatchOpts { ranks: 2, ..opts };
        run_match(&opts).unwrap();
    }

    #[test]
    fn end_to_end_match_with_fault_plan() {
        let opts = MatchOpts {
            data: DataSource::Dataset {
                name: "enron".into(),
                scale: "tiny".into(),
            },
            query: "clique:3".into(),
            directed: false,
            device: "test".into(),
            engine: "cuts".into(),
            ranks: 2,
            enumerate: 0,
            chunk: 64,
            labels: None,
            output: "text".into(),
            plan_cache: 16,
            fault_plan: Some("crash:1@0, drop:0->1@2".into()),
            rank_timeout_ms: Some(40),
        };
        run_match(&opts).unwrap();
    }
}
