//! Multi-threaded arena stress: many threads churn slabs of one class
//! concurrently, each writing its own tag through the slabs it holds.
//! A double-granted slab would show up as a foreign tag on read-back; a
//! lost free as non-zero occupancy after join.

use std::sync::atomic::{AtomicU64, Ordering};

use cuts_gpu_sim::{Arena, ClassSpec, Device, DeviceConfig};

#[test]
fn concurrent_slab_churn_preserves_exclusivity_and_occupancy() {
    const SLABS: usize = 6; // smaller than one shed period: exhaustion is certain
    const SLAB_WORDS: usize = 16;
    const THREADS: usize = 8;
    const ROUNDS: usize = 300;

    let d = Device::new(DeviceConfig::test_small());
    let arena = Arena::new(
        &d,
        &[ClassSpec {
            slab_words: SLAB_WORDS,
            slabs: SLABS,
        }],
    )
    .unwrap();
    let failed_acquires = AtomicU64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS as u32 {
            let arena = arena.clone();
            let failed_acquires = &failed_acquires;
            s.spawn(move || {
                let tag = (t + 1) * 1_000_000;
                let mut held = Vec::new();
                for round in 0..ROUNDS {
                    match arena.acquire(0) {
                        Ok(slab) => {
                            for w in 0..SLAB_WORDS {
                                // SAFETY: the slab was just granted to this
                                // thread exclusively; nobody else writes it.
                                unsafe { slab.write_raw(w, tag + w as u32) };
                            }
                            held.push(slab);
                        }
                        Err(_) => {
                            failed_acquires.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Periodically verify and shed most of what we hold,
                    // in a thread- and round-dependent order. Between
                    // sheds a thread tries to accumulate more slabs than
                    // the class has, so exhaustion is exercised even if
                    // the scheduler serialises the threads.
                    if round % 8 == (t as usize) % 8 {
                        while held.len() > 2 {
                            let slab = held.swap_remove(round % held.len());
                            for w in 0..SLAB_WORDS {
                                assert_eq!(
                                    slab.get(w),
                                    tag + w as u32,
                                    "slab {} leaked to another thread",
                                    slab.index()
                                );
                            }
                            drop(slab);
                        }
                    }
                }
                for slab in held {
                    for w in 0..SLAB_WORDS {
                        assert_eq!(slab.get(w), tag + w as u32);
                    }
                }
            });
        }
    });

    assert_eq!(arena.free_slabs(0), SLABS, "every slab returned after join");
    let stats = arena.stats();
    let class = &stats.classes[0];
    assert_eq!(class.in_use, 0);
    assert_eq!(class.acquires, class.releases, "no lost free");
    assert!(class.high_water <= SLABS);
    assert!(class.high_water > 0);
    // With 8 threads holding ≥2 slabs each across 300 rounds the class
    // must have been driven to exhaustion at least once.
    assert!(
        failed_acquires.load(Ordering::Relaxed) > 0 || class.high_water == SLABS,
        "stress never pressured the class; tighten the geometry"
    );
    // The carve stays the only device allocation through all the churn.
    assert_eq!(d.alloc_calls(), 1);
}
