//! Device errors.

/// Errors surfaced by the simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Allocation exceeded global-memory capacity: the paper's "-" table
    /// entries. Carries requested and available word counts.
    OutOfMemory {
        /// Words requested by the failed allocation.
        requested: usize,
        /// Words still available at the time of the request.
        available: usize,
    },
    /// A buffer reservation overflowed its backing allocation mid-kernel
    /// (the trie arrays filled up and chunking could not shrink further).
    BufferOverflow {
        /// Buffer capacity in words.
        capacity: usize,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "device out of memory: requested {requested} words, {available} available"
            ),
            DeviceError::BufferOverflow { capacity } => {
                write!(f, "device buffer overflow: capacity {capacity} words")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings() {
        let e = DeviceError::OutOfMemory {
            requested: 10,
            available: 5,
        };
        assert!(e.to_string().contains("requested 10"));
        let b = DeviceError::BufferOverflow { capacity: 7 };
        assert!(b.to_string().contains("capacity 7"));
    }
}
