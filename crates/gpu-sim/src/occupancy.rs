//! Occupancy estimation (§2.2.3: "the ratio of the active threads to the
//! maximum number of threads that an SMP can support").

use crate::config::DeviceConfig;

/// Estimates occupancy for a launch of `threads_per_block` threads using
/// `shared_words` of shared memory per block. Returns a value in `(0, 1]`.
///
/// Blocks resident per SM are limited by the thread budget and by shared
/// memory (we model per-SM shared capacity as equal to the per-block
/// maximum, as on real parts where one maximal block exhausts the SM).
pub fn occupancy(cfg: &DeviceConfig, threads_per_block: usize, shared_words: usize) -> f64 {
    assert!(threads_per_block > 0);
    let by_threads = cfg.max_threads_per_sm / threads_per_block;
    let by_shared = cfg
        .shared_mem_words_per_block
        .checked_div(shared_words)
        .unwrap_or(usize::MAX);
    let blocks = by_threads.min(by_shared).clamp(1, 32);
    let active = (blocks * threads_per_block).min(cfg.max_threads_per_sm);
    active as f64 / cfg.max_threads_per_sm as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_occupancy_small_blocks() {
        let cfg = DeviceConfig::v100_like();
        let o = occupancy(&cfg, 256, 0);
        assert!((o - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let cfg = DeviceConfig::v100_like();
        // One block's worth of shared memory => one resident block.
        let o = occupancy(&cfg, 256, cfg.shared_mem_words_per_block);
        assert!(o < 0.2, "occupancy {o}");
    }

    #[test]
    fn block_bigger_than_sm_clamps() {
        let cfg = DeviceConfig::test_small(); // max 256 threads/SM
        let o = occupancy(&cfg, 512, 0);
        assert!(o <= 1.0 && o > 0.0);
    }
}
