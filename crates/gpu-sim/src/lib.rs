#![warn(missing_docs)]

//! Software-simulated GPU execution substrate for the cuTS reproduction.
//!
//! The paper's engine is a set of CUDA kernels; this crate provides the
//! execution model those kernels assume, in plain Rust:
//!
//! * [`DeviceConfig`] — SM count, warp width, shared-memory size, global
//!   memory capacity. Presets mirror the paper's two test machines
//!   ([`DeviceConfig::v100_like`], [`DeviceConfig::a100_like`]) with memory
//!   budgets scaled down proportionally (32 GB : 40 GB ratio preserved), so
//!   out-of-memory behaviour reproduces in shape.
//! * [`Device`] — owns capacity accounting and aggregated counters; its
//!   [`Device::launch`] runs a grid of thread blocks in parallel on host
//!   threads (rayon), one closure activation per block.
//! * [`Counters`] — Nsight-Compute-style hardware metrics: DRAM reads and
//!   writes, shared-memory traffic, atomics, executed instructions, warp
//!   divergence. §6 of the paper argues its speedup *through* these
//!   counters (200× DRAM reads, 34× shared-memory writes, 2× atomics, 7×
//!   instructions vs GSI), so the simulation keeps them first-class.
//! * [`GlobalBuffer`] — a device-resident word array supporting the
//!   paper's write pattern: reserve a range with one atomic, then fill it
//!   without synchronisation ("our strategy only requires an atomic
//!   operation to find the write location").
//! * [`CostModel`] — a roofline translation of counters into simulated
//!   kernel time, so "runtime" comparisons are architecture-scaled rather
//!   than host-scheduler noise.
//! * [`Arena`] — the memory discipline execution sessions run on: **one**
//!   device reservation per session (the *carve*), split into power-of-two
//!   slab classes tracked by lock-free `u64` bitmaps (`cuts-bitalloc`).
//!   Slab acquire/release is an O(1) CAS; trie storage grows by chaining
//!   another slab instead of reallocating, so a warm session performs
//!   zero device-allocator calls — asserted in tests and gated in CI.
//! * [`BufferPool`] — a free-list recycler over [`Device::alloc_buffer`]
//!   with reuse counters; retained as a general-purpose utility for
//!   callers with irregular buffer sizes the slab classes don't fit.

pub mod arena;
pub mod buffer;
pub mod config;
pub mod cost;
pub mod counters;
pub mod device;
pub mod error;
pub mod occupancy;
pub mod pool;
pub mod primitives;

pub use arena::{Arena, ArenaStats, ClassSpec, ClassStats, Slab};
pub use buffer::GlobalBuffer;
pub use config::DeviceConfig;
pub use cost::{Bound, CostBreakdown, CostModel, SimTime};
pub use counters::{BlockCounters, CounterScope, CounterSink, Counters};
pub use device::{BlockCtx, Device};
pub use error::DeviceError;
pub use occupancy::occupancy;
pub use pool::{BufferPool, PoolStats};
