//! Device configurations.

/// Parameters of a simulated GPU.
///
/// Memory capacities are expressed in 32-bit *words* because every array in
/// the cuTS data path (CSR offsets/targets, trie PA/CA) is word-sized; the
/// paper's Table 1 accounts space in words too.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name (shows up in reports).
    pub name: &'static str,
    /// Streaming multiprocessors (paper: V100 = 84, A100 = 108).
    pub num_sms: usize,
    /// Threads per warp (32 on every NVIDIA part).
    pub warp_size: usize,
    /// Maximum resident threads per SM (2048 on V100/A100).
    pub max_threads_per_sm: usize,
    /// Shared memory per thread block, in words.
    pub shared_mem_words_per_block: usize,
    /// Global memory capacity, in words.
    pub global_mem_words: usize,
    /// DRAM bandwidth in words per clock cycle (aggregate).
    pub dram_words_per_cycle: f64,
    /// Core clock in GHz, used only to express simulated cycles as ms.
    pub clock_ghz: f64,
}

impl DeviceConfig {
    /// V100-shaped device (84 SMs). Global memory is scaled from 32 GB to a
    /// simulation-friendly default of 32 Mwords (128 MB): the *ratio*
    /// against [`DeviceConfig::a100_like`] matches the paper's machines, so
    /// the "A100 fits more cases than V100" behaviour reproduces.
    pub fn v100_like() -> Self {
        DeviceConfig {
            name: "sim-V100",
            num_sms: 84,
            warp_size: 32,
            max_threads_per_sm: 2048,
            shared_mem_words_per_block: 96 * 1024 / 4,
            global_mem_words: 32 << 20,
            dram_words_per_cycle: 160.0, // ~900 GB/s at 1.38 GHz
            clock_ghz: 1.38,
        }
    }

    /// A100-shaped device (108 SMs, 40 Mwords global memory).
    pub fn a100_like() -> Self {
        DeviceConfig {
            name: "sim-A100",
            num_sms: 108,
            warp_size: 32,
            max_threads_per_sm: 2048,
            shared_mem_words_per_block: 160 * 1024 / 4,
            global_mem_words: 40 << 20,
            dram_words_per_cycle: 320.0, // ~1.9 TB/s at 1.41 GHz
            clock_ghz: 1.41,
        }
    }

    /// Small device for unit tests: few SMs, tiny memory, so OOM paths and
    /// chunking logic are exercised cheaply.
    pub fn test_small() -> Self {
        DeviceConfig {
            name: "sim-test",
            num_sms: 4,
            warp_size: 32,
            max_threads_per_sm: 256,
            shared_mem_words_per_block: 4096,
            global_mem_words: 1 << 20,
            dram_words_per_cycle: 16.0,
            clock_ghz: 1.0,
        }
    }

    /// Copy with a different global-memory budget (used to model per-rank
    /// memory in the distributed runtime and to force OOM in tests).
    pub fn with_global_mem_words(mut self, words: usize) -> Self {
        self.global_mem_words = words;
        self
    }

    /// Maximum resident warps on the whole device.
    pub fn max_warps(&self) -> usize {
        self.num_sms * self.max_threads_per_sm / self.warp_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_sm_counts() {
        assert_eq!(DeviceConfig::v100_like().num_sms, 84);
        assert_eq!(DeviceConfig::a100_like().num_sms, 108);
    }

    #[test]
    fn memory_ratio_preserved() {
        let v = DeviceConfig::v100_like().global_mem_words as f64;
        let a = DeviceConfig::a100_like().global_mem_words as f64;
        assert!((v / a - 32.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn with_global_mem() {
        let c = DeviceConfig::test_small().with_global_mem_words(1234);
        assert_eq!(c.global_mem_words, 1234);
    }

    #[test]
    fn max_warps() {
        let c = DeviceConfig::test_small();
        assert_eq!(c.max_warps(), 4 * 256 / 32);
    }
}
