//! Device-resident word buffers with atomic-cursor reservation.
//!
//! The central trick of the cuTS data structure (§4.1.1) is that a thread
//! needs only **one atomic operation** — a fetch-add on a write cursor — to
//! claim space for its results, after which it fills the claimed range with
//! plain stores while other warps interleave their own ranges freely.
//! [`GlobalBuffer`] reproduces that: [`GlobalBuffer::reserve`] is the
//! atomic, the returned [`Reservation`] is the claimed range, and
//! disjointness of reservations makes the unsynchronised stores race-free.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::DeviceError;

/// A fixed-capacity array of `u32` words living in (accounted) device
/// memory, supporting concurrent append via reserved ranges.
pub struct GlobalBuffer {
    data: Box<[UnsafeCell<u32>]>,
    cursor: AtomicUsize,
    /// Device allocation ledger; words are returned on drop.
    ledger: Option<Arc<AtomicUsize>>,
}

// SAFETY: concurrent access is mediated by the reservation protocol — every
// write goes through a `Reservation` whose range was claimed by a unique
// fetch-add, so no two threads ever write the same word; reads of committed
// prefixes happen after kernel joins (happens-before via rayon) or target
// ranges disjoint from in-flight reservations.
unsafe impl Sync for GlobalBuffer {}
unsafe impl Send for GlobalBuffer {}

impl GlobalBuffer {
    /// Unaccounted buffer (tests, host-side scratch).
    pub fn new(capacity: usize) -> Self {
        // `vec![0; n]` comes from zeroed (lazily mapped) pages, so huge
        // device buffers cost O(pages touched), not O(capacity);
        // `UnsafeCell<u32>` is `repr(transparent)` over `u32`, so the
        // allocation can be reinterpreted in place.
        let zeroed: Box<[u32]> = vec![0u32; capacity].into_boxed_slice();
        let len = zeroed.len();
        let ptr = Box::into_raw(zeroed) as *mut UnsafeCell<u32>;
        // SAFETY: same length, same layout (repr(transparent)), ownership
        // transferred straight back into a Box.
        let data = unsafe { Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, len)) };
        GlobalBuffer {
            data,
            cursor: AtomicUsize::new(0),
            ledger: None,
        }
    }

    pub(crate) fn with_ledger(capacity: usize, ledger: Arc<AtomicUsize>) -> Self {
        let mut b = GlobalBuffer::new(capacity);
        b.ledger = Some(ledger);
        b
    }

    /// Capacity in words.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Committed length (current cursor, clamped to capacity).
    #[inline]
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Acquire).min(self.capacity())
    }

    /// True if nothing has been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remaining words.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.capacity() - self.len()
    }

    /// Claims `n` contiguous words with a single fetch-add (the paper's one
    /// atomic per write burst). Fails with [`DeviceError::BufferOverflow`]
    /// when the buffer cannot hold `n` more words; the failed claim is
    /// rolled back so the committed length stays accurate. The end-of-range
    /// check uses `checked_add` — a pathological `n` near `usize::MAX` must
    /// overflow the claim, not wrap past the capacity comparison.
    pub fn reserve(&self, n: usize) -> Result<Reservation<'_>, DeviceError> {
        let start = self.cursor.fetch_add(n, Ordering::AcqRel);
        match start.checked_add(n) {
            Some(end) if end <= self.capacity() => Ok(Reservation {
                buf: self,
                start,
                len: n,
            }),
            _ => {
                self.cursor.fetch_sub(n, Ordering::AcqRel);
                Err(DeviceError::BufferOverflow {
                    capacity: self.capacity(),
                })
            }
        }
    }

    /// Writes a word without a reservation.
    ///
    /// # Safety
    /// The caller must guarantee no other thread reads or writes `idx`
    /// concurrently. Used by structures that coordinate a *shared* cursor
    /// across several buffers (the trie's PA/CA pair table), where a
    /// per-buffer reservation cannot express the pairing invariant.
    #[inline]
    pub unsafe fn write_raw(&self, idx: usize, val: u32) {
        debug_assert!(idx < self.capacity());
        unsafe { *self.data[idx].get() = val };
    }

    /// Reads a committed word. Callers must only read indices disjoint from
    /// in-flight reservations (in the engine: previous trie levels while
    /// the current level is being written).
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        assert!(idx < self.capacity(), "read past buffer capacity");
        // SAFETY: in-bounds; protocol guarantees no concurrent writer to
        // this index (see type-level comment).
        unsafe { *self.data[idx].get() }
    }

    /// Copies a committed range out.
    pub fn read_range(&self, range: std::ops::Range<usize>) -> Vec<u32> {
        range.map(|i| self.get(i)).collect()
    }

    /// Host-side exclusive view of the committed prefix.
    pub fn as_mut_slice(&mut self) -> &mut [u32] {
        let len = self.len();
        // SAFETY: &mut self guarantees no concurrent device access.
        unsafe { std::slice::from_raw_parts_mut(self.data.as_ptr() as *mut u32, len) }
    }

    /// Truncates the committed length (host-side; used when a chunk's
    /// scratch levels are discarded during hybrid BFS-DFS).
    pub fn truncate(&self, len: usize) {
        let cur = self.cursor.load(Ordering::Acquire);
        assert!(len <= cur, "truncate can only shrink");
        self.cursor.store(len, Ordering::Release);
    }

    /// Clears the buffer.
    pub fn clear(&self) {
        self.cursor.store(0, Ordering::Release);
    }
}

impl Drop for GlobalBuffer {
    fn drop(&mut self) {
        if let Some(ledger) = &self.ledger {
            ledger.fetch_sub(self.capacity(), Ordering::AcqRel);
        }
    }
}

impl std::fmt::Debug for GlobalBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalBuffer")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

/// A claimed, exclusive range of a [`GlobalBuffer`]. Writing through a
/// reservation is safe: ranges from distinct `reserve` calls never overlap.
pub struct Reservation<'a> {
    buf: &'a GlobalBuffer,
    start: usize,
    len: usize,
}

impl Reservation<'_> {
    /// Absolute start index of the claimed range.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Length of the claimed range.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the claimed range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes `val` at `offset` within the claimed range.
    #[inline]
    pub fn write(&self, offset: usize, val: u32) {
        assert!(offset < self.len, "write past reservation");
        // SAFETY: index in-bounds and exclusively owned by this reservation.
        unsafe { *self.buf.data[self.start + offset].get() = val };
    }

    /// Copies a slice into the front of the claimed range.
    pub fn write_slice(&self, vals: &[u32]) {
        assert!(vals.len() <= self.len, "slice larger than reservation");
        for (i, &v) in vals.iter().enumerate() {
            self.write(i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_write() {
        let b = GlobalBuffer::new(8);
        let r = b.reserve(3).unwrap();
        r.write_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.read_range(0..3), vec![1, 2, 3]);
    }

    #[test]
    fn overflow_rolls_back() {
        let b = GlobalBuffer::new(4);
        b.reserve(3).unwrap();
        assert!(b.reserve(2).is_err());
        assert_eq!(b.len(), 3); // rollback happened
        b.reserve(1).unwrap(); // exactly fits
        assert!(b.reserve(1).is_err());
    }

    #[test]
    fn reserve_near_usize_max_overflows_cleanly() {
        let b = GlobalBuffer::new(8);
        b.reserve(3).unwrap();
        // start + n wraps usize; the unchecked comparison would conclude
        // the claim fits and hand out a range past the end of the buffer.
        assert!(matches!(
            b.reserve(usize::MAX - 1),
            Err(DeviceError::BufferOverflow { capacity: 8 })
        ));
        assert_eq!(b.len(), 3, "failed claim rolled back");
        b.reserve(5).unwrap(); // buffer still fully usable
    }

    #[test]
    fn concurrent_disjoint_appends() {
        use std::sync::atomic::AtomicU64;
        let b = GlobalBuffer::new(10_000);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let b = &b;
                let sum = &sum;
                s.spawn(move || {
                    for i in 0..100 {
                        let r = b.reserve(5).unwrap();
                        for k in 0..5 {
                            r.write(k, t * 1000 + i);
                        }
                        sum.fetch_add(5 * (t * 1000 + i) as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(b.len(), 8 * 100 * 5);
        let total: u64 = b.read_range(0..b.len()).iter().map(|&x| x as u64).sum();
        assert_eq!(total, sum.load(Ordering::Relaxed));
    }

    #[test]
    fn truncate_and_clear() {
        let b = GlobalBuffer::new(8);
        b.reserve(6).unwrap();
        b.truncate(2);
        assert_eq!(b.len(), 2);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "write past reservation")]
    fn reservation_bounds_enforced() {
        let b = GlobalBuffer::new(8);
        let r = b.reserve(2).unwrap();
        r.write(2, 9);
    }

    #[test]
    fn ledger_returns_words_on_drop() {
        let ledger = Arc::new(AtomicUsize::new(100));
        {
            let _b = GlobalBuffer::with_ledger(40, ledger.clone());
            // ledger is managed by Device::alloc_buffer; with_ledger itself
            // does not add, only drop subtracts — emulate the add here.
            ledger.fetch_add(40, Ordering::AcqRel);
            assert_eq!(ledger.load(Ordering::Acquire), 140);
        }
        assert_eq!(ledger.load(Ordering::Acquire), 100);
    }
}
