//! Pooled device buffers: allocate once, reuse across runs.
//!
//! `cudaMalloc`/`cudaFree` round trips are the per-query overhead a
//! serving engine cannot afford — every real framework (and the GSI
//! "plan-then-execute" design the paper compares against) preallocates
//! and recycles. [`BufferPool`] is that recycler for the simulated
//! device: [`BufferPool::acquire`] hands back a previously released
//! [`GlobalBuffer`] of sufficient capacity when one exists (a *reuse*)
//! and only falls through to [`Device::alloc_buffer`] when the pool
//! cannot serve the request (a *device alloc*). Reuse counters make the
//! steady-state claim — "a warm session performs zero new device
//! allocations" — directly assertable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use cuts_obs::{Arg, EventKind, Json, ToJson};

use crate::buffer::GlobalBuffer;
use crate::device::Device;
use crate::error::DeviceError;

/// Cumulative pool statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total `acquire` calls served.
    pub acquires: u64,
    /// Acquires satisfied by recycling a pooled buffer.
    pub reuses: u64,
    /// Acquires that fell through to `Device::alloc_buffer`.
    pub device_allocs: u64,
}

impl PoolStats {
    /// Fraction of acquires served without touching the device allocator
    /// (1.0 once the pool is warm).
    pub fn reuse_ratio(&self) -> f64 {
        if self.acquires == 0 {
            return 0.0;
        }
        self.reuses as f64 / self.acquires as f64
    }
}

impl ToJson for PoolStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("acquires", Json::U64(self.acquires)),
            ("reuses", Json::U64(self.reuses)),
            ("device_allocs", Json::U64(self.device_allocs)),
            ("reuse_ratio", Json::F64(self.reuse_ratio())),
        ])
    }
}

/// A free-list of device buffers bound to one [`Device`].
///
/// Pooled buffers keep their device words allocated (that is the point:
/// the capacity is reserved for the session's lifetime, like the paper's
/// up-front "two big arrays"); dropping the pool drops the buffers and
/// returns the words to the device ledger.
pub struct BufferPool<'d> {
    device: &'d Device,
    free: Mutex<Vec<GlobalBuffer>>,
    acquires: AtomicU64,
    reuses: AtomicU64,
    device_allocs: AtomicU64,
}

impl<'d> BufferPool<'d> {
    /// An empty pool over `device`.
    pub fn new(device: &'d Device) -> Self {
        BufferPool {
            device,
            free: Mutex::new(Vec::new()),
            acquires: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            device_allocs: AtomicU64::new(0),
        }
    }

    /// The device this pool allocates from.
    pub fn device(&self) -> &'d Device {
        self.device
    }

    /// Hands out a cleared buffer of capacity ≥ `words`: the smallest
    /// sufficient pooled buffer when one exists, a fresh device
    /// allocation otherwise.
    pub fn acquire(&self, words: usize) -> Result<GlobalBuffer, DeviceError> {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        let recycled = {
            let mut free = self.free.lock().unwrap();
            let best = free
                .iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= words)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            best.map(|i| free.swap_remove(i))
        };
        match recycled {
            Some(buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                self.device.trace().instant_with(
                    EventKind::Pool,
                    "hit",
                    &[
                        ("words", Arg::U64(words as u64)),
                        ("capacity", Arg::U64(buf.capacity() as u64)),
                    ],
                );
                buf.clear();
                Ok(buf)
            }
            None => {
                self.device_allocs.fetch_add(1, Ordering::Relaxed);
                self.device.trace().instant_with(
                    EventKind::Pool,
                    "miss",
                    &[("words", Arg::U64(words as u64))],
                );
                self.alloc_under_pressure(words)
            }
        }
    }

    /// Hands out a cleared buffer of capacity *exactly* `words`: a pooled
    /// buffer of that capacity when one exists, a fresh device allocation
    /// otherwise. The scheduler sizes each job's trie from the query's own
    /// space estimate and needs run results to be independent of pool
    /// history — best-fit over-serving (a larger recycled buffer granting
    /// a larger trie capacity) would make chunking decisions depend on
    /// which jobs ran before.
    pub fn acquire_exact(&self, words: usize) -> Result<GlobalBuffer, DeviceError> {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        let recycled = {
            let mut free = self.free.lock().unwrap();
            free.iter()
                .position(|b| b.capacity() == words)
                .map(|i| free.swap_remove(i))
        };
        match recycled {
            Some(buf) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                self.device.trace().instant_with(
                    EventKind::Pool,
                    "hit",
                    &[
                        ("words", Arg::U64(words as u64)),
                        ("capacity", Arg::U64(words as u64)),
                    ],
                );
                buf.clear();
                Ok(buf)
            }
            None => {
                self.device_allocs.fetch_add(1, Ordering::Relaxed);
                self.device.trace().instant_with(
                    EventKind::Pool,
                    "miss",
                    &[("words", Arg::U64(words as u64))],
                );
                self.alloc_under_pressure(words)
            }
        }
    }

    /// `Device::alloc_buffer`, retried once after evicting idle pooled
    /// capacity when the first attempt hits device OOM — idle buffers
    /// must not starve a live request (fragmentation across differently
    /// sized jobs would otherwise pin words nothing can use). Eviction is
    /// minimal: the smallest single buffer covering the deficit when one
    /// exists, otherwise largest-first until enough words are free. The
    /// rest of the free list stays warm for later reuse.
    fn alloc_under_pressure(&self, words: usize) -> Result<GlobalBuffer, DeviceError> {
        match self.device.alloc_buffer(words) {
            Err(DeviceError::OutOfMemory { .. }) => {
                let deficit = words.saturating_sub(self.device.free_words());
                let evicted = {
                    let mut free = self.free.lock().unwrap();
                    let mut out: Vec<GlobalBuffer> = Vec::new();
                    if deficit > 0 && !free.is_empty() {
                        let smallest_sufficient = free
                            .iter()
                            .enumerate()
                            .filter(|(_, b)| b.capacity() >= deficit)
                            .min_by_key(|(_, b)| b.capacity())
                            .map(|(i, _)| i);
                        if let Some(i) = smallest_sufficient {
                            out.push(free.swap_remove(i));
                        } else {
                            // No single buffer covers the deficit: shed
                            // largest-first until enough words come back.
                            free.sort_by_key(|b| b.capacity());
                            let mut reclaimed = 0usize;
                            while reclaimed < deficit {
                                match free.pop() {
                                    Some(b) => {
                                        reclaimed += b.capacity();
                                        out.push(b);
                                    }
                                    None => break,
                                }
                            }
                        }
                    }
                    out
                };
                if evicted.is_empty() {
                    return self.device.alloc_buffer(words);
                }
                self.device.trace().instant_with(
                    EventKind::Pool,
                    "evict",
                    &[("buffers", Arg::U64(evicted.len() as u64))],
                );
                drop(evicted);
                self.device.alloc_buffer(words)
            }
            other => other,
        }
    }

    /// Returns a buffer to the free list for later reuse. Its contents
    /// are discarded (cleared on the next acquire); its device words stay
    /// reserved.
    pub fn release(&self, buf: GlobalBuffer) {
        self.free.lock().unwrap().push(buf);
    }

    /// Buffers currently sitting in the free list.
    pub fn pooled(&self) -> usize {
        self.free.lock().unwrap().len()
    }

    /// Device words held by pooled (idle) buffers.
    pub fn pooled_words(&self) -> usize {
        self.free.lock().unwrap().iter().map(|b| b.capacity()).sum()
    }

    /// Snapshot of the reuse statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            acquires: self.acquires.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            device_allocs: self.device_allocs.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for BufferPool<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("pooled", &self.pooled())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    #[test]
    fn cold_acquire_allocates_warm_acquire_reuses() {
        let d = Device::new(DeviceConfig::test_small());
        let pool = BufferPool::new(&d);
        let b = pool.acquire(100).unwrap();
        assert_eq!(d.alloc_calls(), 1);
        pool.release(b);
        let before = d.alloc_calls();
        let b = pool.acquire(80).unwrap(); // smaller fits the pooled 100
        assert_eq!(d.alloc_calls(), before, "warm acquire must not malloc");
        assert_eq!(b.capacity(), 100);
        assert!(b.is_empty(), "recycled buffer arrives cleared");
        let s = pool.stats();
        assert_eq!((s.acquires, s.reuses, s.device_allocs), (2, 1, 1));
        assert!((s.reuse_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn best_fit_picks_smallest_sufficient() {
        let d = Device::new(DeviceConfig::test_small());
        let pool = BufferPool::new(&d);
        let big = pool.acquire(400).unwrap();
        let small = pool.acquire(120).unwrap();
        pool.release(big);
        pool.release(small);
        assert_eq!(pool.pooled(), 2);
        assert_eq!(pool.pooled_words(), 520);
        let got = pool.acquire(100).unwrap();
        assert_eq!(got.capacity(), 120);
    }

    #[test]
    fn too_large_request_falls_through_to_device() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(1000));
        let pool = BufferPool::new(&d);
        let b = pool.acquire(200).unwrap();
        pool.release(b);
        // 600 doesn't fit the pooled 200: a fresh allocation (800 free).
        let b2 = pool.acquire(600).unwrap();
        assert_eq!(b2.capacity(), 600);
        assert_eq!(pool.stats().device_allocs, 2);
        // And the pooled words count against the device budget.
        assert_eq!(d.allocated_words(), 800);
    }

    #[test]
    fn acquire_exact_ignores_larger_pooled_buffers() {
        let d = Device::new(DeviceConfig::test_small());
        let pool = BufferPool::new(&d);
        let big = pool.acquire(400).unwrap();
        pool.release(big);
        // Exact acquisition must not be over-served by the pooled 400.
        let got = pool.acquire_exact(128).unwrap();
        assert_eq!(got.capacity(), 128);
        assert_eq!(pool.stats().device_allocs, 2);
        pool.release(got);
        // But an exact-capacity pooled buffer is recycled.
        let again = pool.acquire_exact(128).unwrap();
        assert_eq!(again.capacity(), 128);
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn oom_pressure_evicts_idle_pooled_buffers() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(1000));
        let pool = BufferPool::new(&d);
        let a = pool.acquire(600).unwrap();
        pool.release(a);
        // 600 pooled + 500 live would exceed the 1000-word budget; the
        // pool must dump its idle capacity rather than fail.
        let b = pool.acquire_exact(500).unwrap();
        assert_eq!(b.capacity(), 500);
        assert_eq!(pool.pooled(), 0, "idle buffer was evicted");
        assert_eq!(d.allocated_words(), 500);
        // A genuinely impossible request still reports OOM.
        assert!(matches!(
            pool.acquire(2000),
            Err(DeviceError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn oom_pressure_evicts_only_the_smallest_sufficient_buffer() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(1000));
        let pool = BufferPool::new(&d);
        let (a, b, c) = (
            pool.acquire(300).unwrap(),
            pool.acquire(200).unwrap(),
            pool.acquire(100).unwrap(),
        );
        pool.release(a);
        pool.release(b);
        pool.release(c);
        // 600 idle + 450 live needs 1050 > 1000: deficit is 50 words, and
        // the idle 100 alone covers it — the 300 and 200 must stay warm.
        let live = pool.acquire_exact(450).unwrap();
        assert_eq!(live.capacity(), 450);
        assert_eq!(pool.pooled(), 2, "only one idle buffer evicted");
        assert_eq!(pool.pooled_words(), 500);
        assert_eq!(d.allocated_words(), 950);
    }

    #[test]
    fn oom_pressure_sheds_largest_first_when_no_single_buffer_suffices() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(1000));
        let pool = BufferPool::new(&d);
        let (a, b, c) = (
            pool.acquire(250).unwrap(),
            pool.acquire(250).unwrap(),
            pool.acquire(100).unwrap(),
        );
        pool.release(a);
        pool.release(b);
        pool.release(c);
        // Deficit is 400: no single idle buffer covers it, so the two
        // 250s go (largest-first) and the 100 survives.
        let live = pool.acquire_exact(800).unwrap();
        assert_eq!(live.capacity(), 800);
        assert_eq!(pool.pooled(), 1, "smallest idle buffer kept");
        assert_eq!(pool.pooled_words(), 100);
        assert_eq!(d.allocated_words(), 900);
    }

    #[test]
    fn dropping_pool_returns_words() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(1000));
        {
            let pool = BufferPool::new(&d);
            let b = pool.acquire(300).unwrap();
            pool.release(b);
            assert_eq!(d.allocated_words(), 300);
        }
        assert_eq!(d.allocated_words(), 0);
    }
}
