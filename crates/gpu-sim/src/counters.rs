//! Hardware metric counters (the simulated Nsight Compute).

use std::cell::RefCell;
use std::ops::{AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cuts_obs::{CounterDelta, Json, ToJson};

/// A snapshot of hardware metrics. All units are events (reads/writes are in
/// words, instructions in dynamic instruction count).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Words read from global memory (DRAM).
    pub dram_reads: u64,
    /// Words written to global memory.
    pub dram_writes: u64,
    /// Words read from shared memory.
    pub shmem_reads: u64,
    /// Words written to shared memory.
    pub shmem_writes: u64,
    /// Atomic operations on global memory.
    pub atomics: u64,
    /// Dynamic instructions executed (SASS-level proxy).
    pub instructions: u64,
    /// Warp-divergent branch events.
    pub divergent_branches: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
}

impl Counters {
    /// Total DRAM traffic in words.
    pub fn dram_total(&self) -> u64 {
        self.dram_reads + self.dram_writes
    }

    /// Ratio helper: `self.field / other.field` with zero-guard, used by the
    /// Table 3 `--metrics` report.
    pub fn ratio(num: u64, den: u64) -> f64 {
        if den == 0 {
            if num == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            num as f64 / den as f64
        }
    }

    /// [`Counters::ratio`] rendered for reports: `"5.0"`, or `"inf"` when
    /// the denominator is zero. Raw `f64::INFINITY` used to leak into
    /// JSON output (where it is unrepresentable); report paths must go
    /// through this (or a [`cuts_obs::Json`] tree, whose writer emits
    /// non-finite floats as strings).
    pub fn ratio_str(num: u64, den: u64) -> String {
        let r = Self::ratio(num, den);
        if r.is_finite() {
            format!("{r:.1}")
        } else {
            "inf".to_string()
        }
    }
}

impl From<Counters> for CounterDelta {
    fn from(c: Counters) -> CounterDelta {
        CounterDelta {
            dram_reads: c.dram_reads,
            dram_writes: c.dram_writes,
            shmem_reads: c.shmem_reads,
            shmem_writes: c.shmem_writes,
            atomics: c.atomics,
            instructions: c.instructions,
            divergent_branches: c.divergent_branches,
            kernel_launches: c.kernel_launches,
        }
    }
}

impl ToJson for Counters {
    fn to_json(&self) -> Json {
        CounterDelta::from(*self).to_json()
    }
}

impl Sub for Counters {
    type Output = Counters;

    /// Field-wise saturating difference — the delta between two snapshots
    /// of a monotonically increasing aggregate (saturation guards against
    /// a `reset_counters` call racing between the two snapshots).
    fn sub(self, rhs: Self) -> Counters {
        Counters {
            dram_reads: self.dram_reads.saturating_sub(rhs.dram_reads),
            dram_writes: self.dram_writes.saturating_sub(rhs.dram_writes),
            shmem_reads: self.shmem_reads.saturating_sub(rhs.shmem_reads),
            shmem_writes: self.shmem_writes.saturating_sub(rhs.shmem_writes),
            atomics: self.atomics.saturating_sub(rhs.atomics),
            instructions: self.instructions.saturating_sub(rhs.instructions),
            divergent_branches: self
                .divergent_branches
                .saturating_sub(rhs.divergent_branches),
            kernel_launches: self.kernel_launches.saturating_sub(rhs.kernel_launches),
        }
    }
}

/// A window over the device's monotonically increasing counter aggregate:
/// opened with [`crate::Device::counter_scope`], closed by reading
/// [`CounterScope::elapsed`]. Scoped accounting replaces the old
/// reset-then-read pattern, which destroyed any other run's view of the
/// same device.
#[derive(Debug, Clone, Copy)]
pub struct CounterScope {
    start: Counters,
}

impl CounterScope {
    pub(crate) fn new(start: Counters) -> Self {
        CounterScope { start }
    }

    /// Counters accumulated on `device` since this scope was opened.
    pub fn elapsed(&self, device: &crate::device::Device) -> Counters {
        device.counters() - self.start
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Self) {
        self.dram_reads += rhs.dram_reads;
        self.dram_writes += rhs.dram_writes;
        self.shmem_reads += rhs.shmem_reads;
        self.shmem_writes += rhs.shmem_writes;
        self.atomics += rhs.atomics;
        self.instructions += rhs.instructions;
        self.divergent_branches += rhs.divergent_branches;
        self.kernel_launches += rhs.kernel_launches;
    }
}

/// Per-block counter cell: plain `u64` fields bumped inside one thread
/// block's execution, merged into the device aggregate once at block end.
/// Keeping the hot-path increments non-atomic is exactly the pattern the
/// perf-book recommends (merge-on-drop instead of contended atomics).
#[derive(Debug, Default)]
pub struct BlockCounters {
    /// Accumulated metrics for this block.
    pub c: Counters,
}

impl BlockCounters {
    /// Coalesced global-memory read of `len` contiguous words by a warp of
    /// width `warp`: `ceil(len / warp)` transactions, `len` words of
    /// traffic, one load instruction per word.
    #[inline]
    pub fn dram_read_coalesced(&mut self, len: usize) {
        self.c.dram_reads += len as u64;
        self.c.instructions += len as u64;
    }

    /// Strided/random global read of `len` words (uncoalesced: every word
    /// its own transaction — cost model treats reads as word traffic, so
    /// this also bumps the divergence proxy).
    #[inline]
    pub fn dram_read_random(&mut self, len: usize) {
        self.c.dram_reads += len as u64;
        self.c.instructions += len as u64;
        self.c.divergent_branches += 1;
    }

    /// Coalesced global write of `len` words.
    #[inline]
    pub fn dram_write(&mut self, len: usize) {
        self.c.dram_writes += len as u64;
        self.c.instructions += len as u64;
    }

    /// Shared-memory read of `len` words.
    #[inline]
    pub fn shmem_read(&mut self, len: usize) {
        self.c.shmem_reads += len as u64;
        self.c.instructions += len as u64;
    }

    /// Shared-memory write of `len` words.
    #[inline]
    pub fn shmem_write(&mut self, len: usize) {
        self.c.shmem_writes += len as u64;
        self.c.instructions += len as u64;
    }

    /// One global atomic (e.g. cursor fetch-add).
    #[inline]
    pub fn atomic(&mut self) {
        self.c.atomics += 1;
        self.c.instructions += 1;
    }

    /// `n` ALU instructions (comparisons, address math).
    #[inline]
    pub fn alu(&mut self, n: usize) {
        self.c.instructions += n as u64;
    }

    /// A divergent branch event.
    #[inline]
    pub fn diverge(&mut self) {
        self.c.divergent_branches += 1;
        self.c.instructions += 1;
    }
}

/// Device-wide atomic counter aggregate (relaxed ordering: these are
/// statistics, not synchronisation — the kernel-completion join provides
/// the happens-before edge for reading them).
#[derive(Debug, Default)]
pub struct AtomicCounters {
    dram_reads: AtomicU64,
    dram_writes: AtomicU64,
    shmem_reads: AtomicU64,
    shmem_writes: AtomicU64,
    atomics: AtomicU64,
    instructions: AtomicU64,
    divergent_branches: AtomicU64,
    kernel_launches: AtomicU64,
}

impl AtomicCounters {
    /// Merges a block's counters.
    pub fn merge(&self, b: &Counters) {
        self.dram_reads.fetch_add(b.dram_reads, Ordering::Relaxed);
        self.dram_writes.fetch_add(b.dram_writes, Ordering::Relaxed);
        self.shmem_reads.fetch_add(b.shmem_reads, Ordering::Relaxed);
        self.shmem_writes
            .fetch_add(b.shmem_writes, Ordering::Relaxed);
        self.atomics.fetch_add(b.atomics, Ordering::Relaxed);
        self.instructions
            .fetch_add(b.instructions, Ordering::Relaxed);
        self.divergent_branches
            .fetch_add(b.divergent_branches, Ordering::Relaxed);
        self.kernel_launches
            .fetch_add(b.kernel_launches, Ordering::Relaxed);
    }

    /// Reads a snapshot.
    pub fn snapshot(&self) -> Counters {
        Counters {
            dram_reads: self.dram_reads.load(Ordering::Relaxed),
            dram_writes: self.dram_writes.load(Ordering::Relaxed),
            shmem_reads: self.shmem_reads.load(Ordering::Relaxed),
            shmem_writes: self.shmem_writes.load(Ordering::Relaxed),
            atomics: self.atomics.load(Ordering::Relaxed),
            instructions: self.instructions.load(Ordering::Relaxed),
            divergent_branches: self.divergent_branches.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
        }
    }

    /// Resets everything to zero.
    pub fn reset(&self) {
        self.dram_reads.store(0, Ordering::Relaxed);
        self.dram_writes.store(0, Ordering::Relaxed);
        self.shmem_reads.store(0, Ordering::Relaxed);
        self.shmem_writes.store(0, Ordering::Relaxed);
        self.atomics.store(0, Ordering::Relaxed);
        self.instructions.store(0, Ordering::Relaxed);
        self.divergent_branches.store(0, Ordering::Relaxed);
        self.kernel_launches.store(0, Ordering::Relaxed);
    }
}

thread_local! {
    /// Stack of per-thread counter sinks. Kernel launches merge their exact
    /// launch total into the top of the *calling* thread's stack, so two
    /// runs on different threads sharing one device each see only their own
    /// work — something the snapshot-delta [`CounterScope`] cannot offer
    /// once launches interleave.
    static SINKS: RefCell<Vec<Arc<AtomicCounters>>> = const { RefCell::new(Vec::new()) };
}

/// A per-thread counter accumulator: while installed, every kernel launch
/// issued from this thread also merges its counter total here. RAII — the
/// sink uninstalls itself on drop. Unlike [`CounterScope`] this is exact
/// under concurrency: launches from *other* threads never leak in.
#[derive(Debug)]
pub struct CounterSink {
    cell: Arc<AtomicCounters>,
}

impl CounterSink {
    /// Installs a fresh sink on the calling thread's stack. Sinks nest;
    /// launches merge only into the innermost (top) sink.
    pub fn install() -> Self {
        let cell = Arc::new(AtomicCounters::default());
        SINKS.with(|s| s.borrow_mut().push(cell.clone()));
        CounterSink { cell }
    }

    /// Counters accumulated so far by launches on this thread.
    pub fn snapshot(&self) -> Counters {
        self.cell.snapshot()
    }
}

impl Drop for CounterSink {
    fn drop(&mut self) {
        SINKS.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| Arc::ptr_eq(c, &self.cell)) {
                stack.remove(pos);
            }
        });
    }
}

/// Merges `c` into the calling thread's innermost installed sink (no-op
/// when none is installed). Called by the device at launch retirement.
pub(crate) fn sink_merge(c: &Counters) {
    SINKS.with(|s| {
        if let Some(top) = s.borrow().last() {
            top.merge(c);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counter_accounting() {
        let mut b = BlockCounters::default();
        b.dram_read_coalesced(10);
        b.dram_write(4);
        b.shmem_write(2);
        b.atomic();
        b.alu(3);
        assert_eq!(b.c.dram_reads, 10);
        assert_eq!(b.c.dram_writes, 4);
        assert_eq!(b.c.shmem_writes, 2);
        assert_eq!(b.c.atomics, 1);
        assert_eq!(b.c.instructions, 10 + 4 + 2 + 1 + 3);
    }

    #[test]
    fn merge_and_snapshot() {
        let agg = AtomicCounters::default();
        let mut b = BlockCounters::default();
        b.dram_read_coalesced(5);
        agg.merge(&b.c);
        agg.merge(&b.c);
        let s = agg.snapshot();
        assert_eq!(s.dram_reads, 10);
        agg.reset();
        assert_eq!(agg.snapshot(), Counters::default());
    }

    #[test]
    fn add_assign_sums_all_fields() {
        let mut a = Counters {
            dram_reads: 1,
            dram_writes: 2,
            shmem_reads: 3,
            shmem_writes: 4,
            atomics: 5,
            instructions: 6,
            divergent_branches: 7,
            kernel_launches: 8,
        };
        a += a;
        assert_eq!(a.dram_reads, 2);
        assert_eq!(a.kernel_launches, 16);
        assert_eq!(a.dram_total(), 2 + 4);
    }

    #[test]
    fn ratio_zero_guard() {
        assert_eq!(Counters::ratio(10, 2), 5.0);
        assert_eq!(Counters::ratio(0, 0), 1.0);
        assert!(Counters::ratio(3, 0).is_infinite());
    }

    #[test]
    fn ratio_str_never_leaks_infinity() {
        assert_eq!(Counters::ratio_str(10, 2), "5.0");
        assert_eq!(Counters::ratio_str(3, 0), "inf");
        assert_eq!(Counters::ratio_str(0, 0), "1.0");
    }

    #[test]
    fn sinks_nest_and_uninstall_on_drop() {
        let outer = CounterSink::install();
        let mut b = BlockCounters::default();
        b.alu(3);
        {
            let inner = CounterSink::install();
            sink_merge(&b.c);
            assert_eq!(inner.snapshot().instructions, 3);
            // Only the innermost sink sees the merge.
            assert_eq!(outer.snapshot(), Counters::default());
        }
        // Inner dropped: merges land in the outer sink again.
        sink_merge(&b.c);
        assert_eq!(outer.snapshot().instructions, 3);
        drop(outer);
        // No sink installed: merge is a no-op (must not panic).
        sink_merge(&b.c);
    }

    #[test]
    fn counters_to_json_roundtrip() {
        let c = Counters {
            dram_reads: 1,
            dram_writes: 2,
            shmem_reads: 3,
            shmem_writes: 4,
            atomics: 5,
            instructions: 6,
            divergent_branches: 7,
            kernel_launches: 8,
        };
        let j = c.to_json();
        assert_eq!(j.get("dram_reads").unwrap().as_u64(), Some(1));
        assert_eq!(j.get("kernel_launches").unwrap().as_u64(), Some(8));
        Json::parse(&j.render()).unwrap();
        let d = CounterDelta::from(c);
        assert_eq!(d.instructions, 6);
        assert!(!d.is_zero());
    }
}
