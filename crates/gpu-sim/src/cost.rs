//! Roofline cost model: counters → simulated kernel time.
//!
//! Wall-clock of the host simulation measures the *simulator*, not the
//! modelled device; comparisons between engines must instead be grounded in
//! what the counters say the device would have done. The model is a simple
//! roofline: a kernel is bound by whichever of compute, DRAM bandwidth, or
//! shared-memory bandwidth it saturates, plus a serialisation charge for
//! global atomics. This is deliberately coarse — the paper's claims are
//! order-of-magnitude (e.g. "200× lower DRAM read traffic"), which a
//! roofline preserves faithfully.

use crate::config::DeviceConfig;
use crate::counters::Counters;

/// Simulated elapsed time for a set of counters on a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime {
    /// Device cycles.
    pub cycles: f64,
}

impl SimTime {
    /// Milliseconds at the given core clock.
    pub fn millis(&self, clock_ghz: f64) -> f64 {
        self.cycles / (clock_ghz * 1e6)
    }
}

/// Tunable throughput assumptions of the roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Instructions retired per SM per cycle (warp-wide).
    pub ipc_per_sm: f64,
    /// Shared-memory words per SM per cycle.
    pub shmem_words_per_sm_cycle: f64,
    /// Cycles a global atomic serialises for, divided across SMs.
    pub atomic_cycles: f64,
    /// Fixed cycles per kernel launch.
    pub launch_cycles: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ipc_per_sm: 64.0,
            shmem_words_per_sm_cycle: 32.0,
            atomic_cycles: 4.0,
            launch_cycles: 5_000.0,
        }
    }
}

/// Which roofline term dominates a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Instruction-issue limited.
    Compute,
    /// DRAM-bandwidth limited (the paper's expectation: "subgraph
    /// isomorphism is a memory-bound problem").
    Dram,
    /// Shared-memory-bandwidth limited.
    Shmem,
}

/// Per-term cycle breakdown of the roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Instruction-issue cycles.
    pub compute_cycles: f64,
    /// DRAM transfer cycles.
    pub dram_cycles: f64,
    /// Shared-memory transfer cycles.
    pub shmem_cycles: f64,
    /// Atomic serialisation cycles (additive).
    pub atomic_cycles: f64,
    /// Launch overhead cycles (additive).
    pub launch_cycles: f64,
    /// The dominating term.
    pub bound: Bound,
}

impl CostBreakdown {
    /// Total modelled cycles (max of the overlapping terms plus the
    /// additive ones).
    pub fn total_cycles(&self) -> f64 {
        self.compute_cycles
            .max(self.dram_cycles)
            .max(self.shmem_cycles)
            + self.atomic_cycles
            + self.launch_cycles
    }
}

impl CostModel {
    /// Full roofline breakdown for a counter snapshot on a device.
    pub fn breakdown(&self, c: &Counters, cfg: &DeviceConfig) -> CostBreakdown {
        let sms = cfg.num_sms as f64;
        let compute_cycles = c.instructions as f64 / (sms * self.ipc_per_sm);
        let dram_cycles = c.dram_total() as f64 / cfg.dram_words_per_cycle;
        let shmem_cycles =
            (c.shmem_reads + c.shmem_writes) as f64 / (sms * self.shmem_words_per_sm_cycle);
        let bound = if dram_cycles >= compute_cycles && dram_cycles >= shmem_cycles {
            Bound::Dram
        } else if compute_cycles >= shmem_cycles {
            Bound::Compute
        } else {
            Bound::Shmem
        };
        CostBreakdown {
            compute_cycles,
            dram_cycles,
            shmem_cycles,
            atomic_cycles: c.atomics as f64 * self.atomic_cycles / sms,
            launch_cycles: c.kernel_launches as f64 * self.launch_cycles,
            bound,
        }
    }

    /// Evaluates the roofline for a counter snapshot on a device.
    pub fn time(&self, c: &Counters, cfg: &DeviceConfig) -> SimTime {
        SimTime {
            cycles: self.breakdown(c, cfg).total_cycles(),
        }
    }

    /// Convenience: milliseconds directly.
    pub fn millis(&self, c: &Counters, cfg: &DeviceConfig) -> f64 {
        self.time(c, cfg).millis(cfg.clock_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(instructions: u64, dram: u64) -> Counters {
        Counters {
            instructions,
            dram_reads: dram,
            ..Default::default()
        }
    }

    #[test]
    fn memory_bound_kernel() {
        let cfg = DeviceConfig::test_small(); // 16 words/cycle, 4 SMs, ipc 64
        let m = CostModel::default();
        // 16k DRAM words at 16 w/c = 1000 cycles; 256 instrs trivial.
        let t = m.time(&counters(256, 16_000), &cfg);
        assert!((t.cycles - 1000.0).abs() < 1.0);
    }

    #[test]
    fn compute_bound_kernel() {
        let cfg = DeviceConfig::test_small();
        let m = CostModel::default();
        // 256k instrs / (4*64) = 1000 cycles dominates 160 dram words (10c).
        let t = m.time(&counters(256_000, 160), &cfg);
        assert!((t.cycles - 1000.0).abs() < 1.0);
    }

    #[test]
    fn atomics_add_serialisation() {
        let cfg = DeviceConfig::test_small();
        let m = CostModel::default();
        let mut c = counters(0, 0);
        c.atomics = 400;
        let t = m.time(&c, &cfg);
        assert!((t.cycles - 400.0).abs() < 1.0); // 400 * 4 / 4 SMs
    }

    #[test]
    fn millis_scaling() {
        let t = SimTime { cycles: 2e6 };
        assert!((t.millis(2.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_identifies_bound() {
        let cfg = DeviceConfig::test_small();
        let m = CostModel::default();
        let b = m.breakdown(&counters(256, 16_000), &cfg);
        assert_eq!(b.bound, Bound::Dram);
        let b = m.breakdown(&counters(10_000_000, 16), &cfg);
        assert_eq!(b.bound, Bound::Compute);
        let mut c = counters(0, 0);
        c.shmem_reads = 10_000_000;
        assert_eq!(m.breakdown(&c, &cfg).bound, Bound::Shmem);
        assert!((m.breakdown(&c, &cfg).total_cycles() - m.time(&c, &cfg).cycles).abs() < 1e-9);
    }

    #[test]
    fn more_sms_is_faster_for_compute() {
        let m = CostModel::default();
        let c = counters(10_000_000, 0);
        let v = m.time(&c, &DeviceConfig::v100_like());
        let a = m.time(&c, &DeviceConfig::a100_like());
        assert!(a.cycles < v.cycles);
    }
}
