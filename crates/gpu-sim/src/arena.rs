//! Per-device arena-slab allocator: one reservation, many slabs.
//!
//! The paper sizes its trie arrays once from `cudaMemGetInfo` and never
//! calls `cudaMalloc` again; this module generalises that discipline. An
//! [`Arena`] makes **one** capacity-accounted device allocation (the
//! *carve*) and splits it into power-of-two *slab classes*. Each class
//! tracks its slabs with a lock-free `u64` bitmap ([`cuts_bitalloc`]), so
//! [`Arena::acquire`] and slab release are O(1) CAS operations — no free
//! list, no lock-held linear scan, no allocator traffic on the hot path.
//!
//! Slab chains built on top (see `cuts-trie`'s chained `PairTable`) grow
//! by appending a fresh slab instead of reallocating and copying, which
//! is what makes mid-run trie growth cheap enough to prefer over the
//! retry-from-scratch the buffer pool forced.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cuts_obs::{Arg, EventKind, Json, ToJson, Trace};

use crate::buffer::GlobalBuffer;
use crate::device::Device;
use crate::error::DeviceError;

/// Geometry of one slab class: `slabs` slabs of `slab_words` words each.
/// `slab_words` must be a power of two (chains index into slabs with
/// shift/mask arithmetic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassSpec {
    /// Words per slab (power of two).
    pub slab_words: usize,
    /// Number of slabs in the class.
    pub slabs: usize,
}

impl ClassSpec {
    /// Total words the class occupies in the carve.
    #[inline]
    pub fn total_words(&self) -> usize {
        self.slab_words * self.slabs
    }
}

/// Live per-class state: bitmap plus occupancy statistics.
struct ClassState {
    /// Word offset of the class region inside the backing carve.
    base: usize,
    slab_words: usize,
    slabs: usize,
    bitmap: Box<[AtomicU64]>,
    hint: AtomicUsize,
    in_use: AtomicUsize,
    high_water: AtomicUsize,
    acquires: AtomicU64,
    releases: AtomicU64,
}

struct ArenaShared {
    /// The single device allocation every slab lives inside. Its cursor
    /// is unused — slabs write through `write_raw` at fixed offsets.
    backing: GlobalBuffer,
    classes: Vec<ClassState>,
    trace: Trace,
}

/// A carved-up device reservation handing out fixed-size slabs.
///
/// Cheap to clone (an `Arc`); all state is internally synchronised.
/// Dropping the last handle (and every outstanding [`Slab`]) returns the
/// carve's words to the device ledger.
#[derive(Clone)]
pub struct Arena {
    shared: Arc<ArenaShared>,
}

impl Arena {
    /// Carves one device allocation covering every class in `specs`.
    /// This is the arena's only [`Device::alloc_buffer`] call, ever.
    ///
    /// # Panics
    /// When a class has zero slabs, zero words, or a non-power-of-two
    /// slab size — geometry bugs, not runtime conditions.
    pub fn new(device: &Device, specs: &[ClassSpec]) -> Result<Arena, DeviceError> {
        let mut base = 0usize;
        let mut classes = Vec::with_capacity(specs.len());
        for spec in specs {
            assert!(
                spec.slab_words.is_power_of_two(),
                "slab_words must be a power of two, got {}",
                spec.slab_words
            );
            assert!(spec.slabs > 0, "a class needs at least one slab");
            classes.push(ClassState {
                base,
                slab_words: spec.slab_words,
                slabs: spec.slabs,
                bitmap: (0..cuts_bitalloc::words_for(spec.slabs))
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                hint: AtomicUsize::new(0),
                in_use: AtomicUsize::new(0),
                high_water: AtomicUsize::new(0),
                acquires: AtomicU64::new(0),
                releases: AtomicU64::new(0),
            });
            base += spec.total_words();
        }
        let backing = device.alloc_buffer(base)?;
        let trace = device.trace().clone();
        trace.instant_with(
            EventKind::Arena,
            "carve",
            &[
                ("words", Arg::U64(base as u64)),
                ("classes", Arg::U64(specs.len() as u64)),
            ],
        );
        Ok(Arena {
            shared: Arc::new(ArenaShared {
                backing,
                classes,
                trace,
            }),
        })
    }

    /// Claims one slab from class `class`. O(1): a bitmap CAS, no lock.
    /// Fails with [`DeviceError::OutOfMemory`] when the class is fully
    /// occupied — the arena never falls back to the device allocator;
    /// exhaustion is the caller's admission-control signal.
    pub fn acquire(&self, class: usize) -> Result<Slab, DeviceError> {
        let cs = &self.shared.classes[class];
        let Some(index) = cuts_bitalloc::acquire(&cs.bitmap, cs.slabs, &cs.hint) else {
            return Err(DeviceError::OutOfMemory {
                requested: cs.slab_words,
                available: 0,
            });
        };
        cs.acquires.fetch_add(1, Ordering::Relaxed);
        let now = cs.in_use.fetch_add(1, Ordering::AcqRel) + 1;
        self.shared.trace.instant_with(
            EventKind::Arena,
            "acquire",
            &[
                ("class", Arg::U64(class as u64)),
                ("slab_words", Arg::U64(cs.slab_words as u64)),
                ("in_use", Arg::U64(now as u64)),
            ],
        );
        // Publish a new occupancy peak (monotonic CAS; ties lose).
        let mut peak = cs.high_water.load(Ordering::Relaxed);
        while now > peak {
            match cs.high_water.compare_exchange_weak(
                peak,
                now,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.shared.trace.instant_with(
                        EventKind::Arena,
                        "high_water",
                        &[
                            ("class", Arg::U64(class as u64)),
                            ("slabs", Arg::U64(now as u64)),
                        ],
                    );
                    break;
                }
                Err(seen) => peak = seen,
            }
        }
        Ok(Slab {
            shared: self.shared.clone(),
            class,
            index,
            base: cs.base + index * cs.slab_words,
            words: cs.slab_words,
        })
    }

    /// Geometry of class `class`.
    pub fn spec(&self, class: usize) -> ClassSpec {
        let cs = &self.shared.classes[class];
        ClassSpec {
            slab_words: cs.slab_words,
            slabs: cs.slabs,
        }
    }

    /// Slabs of class `class` currently free.
    pub fn free_slabs(&self, class: usize) -> usize {
        let cs = &self.shared.classes[class];
        cs.slabs - cuts_bitalloc::occupancy(&cs.bitmap, cs.slabs)
    }

    /// Words in the backing carve.
    pub fn total_words(&self) -> usize {
        self.shared.backing.capacity()
    }

    /// Snapshot of per-class occupancy and lifetime counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            backing_words: self.shared.backing.capacity(),
            device_allocs: 1,
            classes: self
                .shared
                .classes
                .iter()
                .map(|cs| ClassStats {
                    slab_words: cs.slab_words,
                    slabs: cs.slabs,
                    in_use: cs.in_use.load(Ordering::Acquire),
                    high_water: cs.high_water.load(Ordering::Acquire),
                    acquires: cs.acquires.load(Ordering::Relaxed),
                    releases: cs.releases.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("backing_words", &self.shared.backing.capacity())
            .field("classes", &self.shared.classes.len())
            .finish()
    }
}

/// One claimed slab: a fixed, exclusive word range of the arena's carve.
/// Dropping the slab releases its bitmap bit (O(1)); the words stay
/// carved and go back into the class's free set.
pub struct Slab {
    shared: Arc<ArenaShared>,
    class: usize,
    index: usize,
    base: usize,
    words: usize,
}

impl Slab {
    /// The slab's class.
    #[inline]
    pub fn class(&self) -> usize {
        self.class
    }

    /// The slab's index within its class.
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// Capacity in words.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words
    }

    /// Reads the word at `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        assert!(idx < self.words, "read past slab capacity");
        self.shared.backing.get(self.base + idx)
    }

    /// Writes the word at `idx` without synchronisation.
    ///
    /// # Safety
    /// The caller must guarantee no other thread reads or writes `idx` of
    /// this slab concurrently — same protocol as
    /// [`GlobalBuffer::write_raw`]; chained pair tables coordinate
    /// through their own shared cursor.
    #[inline]
    pub unsafe fn write_raw(&self, idx: usize, val: u32) {
        debug_assert!(idx < self.words, "write past slab capacity");
        unsafe { self.shared.backing.write_raw(self.base + idx, val) };
    }
}

impl Drop for Slab {
    fn drop(&mut self) {
        let cs = &self.shared.classes[self.class];
        let freed = cuts_bitalloc::release(&cs.bitmap, self.index);
        debug_assert!(freed, "slab {} double-released", self.index);
        cs.releases.fetch_add(1, Ordering::Relaxed);
        let now = cs.in_use.fetch_sub(1, Ordering::AcqRel) - 1;
        self.shared.trace.instant_with(
            EventKind::Arena,
            "release",
            &[
                ("class", Arg::U64(self.class as u64)),
                ("in_use", Arg::U64(now as u64)),
            ],
        );
    }
}

impl std::fmt::Debug for Slab {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Slab")
            .field("class", &self.class)
            .field("index", &self.index)
            .field("words", &self.words)
            .finish()
    }
}

/// Point-in-time statistics for one slab class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// Words per slab.
    pub slab_words: usize,
    /// Slabs in the class.
    pub slabs: usize,
    /// Slabs currently held.
    pub in_use: usize,
    /// Peak concurrent slabs held over the arena's lifetime.
    pub high_water: usize,
    /// Lifetime acquire count.
    pub acquires: u64,
    /// Lifetime release count.
    pub releases: u64,
}

impl ToJson for ClassStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("slab_words", Json::U64(self.slab_words as u64)),
            ("slabs", Json::U64(self.slabs as u64)),
            ("in_use", Json::U64(self.in_use as u64)),
            ("high_water", Json::U64(self.high_water as u64)),
            ("acquires", Json::U64(self.acquires)),
            ("releases", Json::U64(self.releases)),
        ])
    }
}

/// Snapshot of an arena: the carve size plus per-class statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaStats {
    /// Words in the backing carve.
    pub backing_words: usize,
    /// Device allocations the arena has made — always 1 (the carve), kept
    /// as a field so session stats can report it alongside pool-era data.
    pub device_allocs: u64,
    /// Per-class statistics.
    pub classes: Vec<ClassStats>,
}

impl ArenaStats {
    /// Lifetime slab acquisitions across all classes.
    pub fn slab_acquires(&self) -> u64 {
        self.classes.iter().map(|c| c.acquires).sum()
    }

    /// Slabs currently held across all classes.
    pub fn slabs_in_use(&self) -> usize {
        self.classes.iter().map(|c| c.in_use).sum()
    }

    /// Peak words concurrently held (per-class peaks summed — an upper
    /// bound on the true cross-class peak).
    pub fn high_water_words(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.high_water * c.slab_words)
            .sum()
    }
}

impl ToJson for ArenaStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("backing_words", Json::U64(self.backing_words as u64)),
            ("device_allocs", Json::U64(self.device_allocs)),
            (
                "classes",
                Json::Arr(self.classes.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    #[test]
    fn one_carve_many_slabs() {
        let d = Device::new(DeviceConfig::test_small());
        let arena = Arena::new(
            &d,
            &[ClassSpec {
                slab_words: 64,
                slabs: 4,
            }],
        )
        .unwrap();
        assert_eq!(d.alloc_calls(), 1, "the carve is the only device alloc");
        assert_eq!(arena.total_words(), 256);
        assert_eq!(d.allocated_words(), 256);

        let slabs: Vec<Slab> = (0..4).map(|_| arena.acquire(0).unwrap()).collect();
        assert_eq!(arena.free_slabs(0), 0);
        assert!(matches!(
            arena.acquire(0),
            Err(DeviceError::OutOfMemory { requested: 64, .. })
        ));
        drop(slabs);
        assert_eq!(arena.free_slabs(0), 4);
        // Exhaustion and recycling never touched the device allocator.
        assert_eq!(d.alloc_calls(), 1);

        let s = arena.stats();
        assert_eq!(s.device_allocs, 1);
        assert_eq!(s.classes[0].high_water, 4);
        assert_eq!(s.classes[0].in_use, 0);
        assert_eq!(s.classes[0].acquires, 4);
        assert_eq!(s.classes[0].releases, 4);
        assert_eq!(s.slab_acquires(), 4);
        assert_eq!(s.high_water_words(), 256);
    }

    #[test]
    fn slabs_are_disjoint_word_ranges() {
        let d = Device::new(DeviceConfig::test_small());
        let arena = Arena::new(
            &d,
            &[
                ClassSpec {
                    slab_words: 8,
                    slabs: 2,
                },
                ClassSpec {
                    slab_words: 16,
                    slabs: 2,
                },
            ],
        )
        .unwrap();
        let a = arena.acquire(0).unwrap();
        let b = arena.acquire(0).unwrap();
        let c = arena.acquire(1).unwrap();
        for i in 0..8 {
            unsafe { a.write_raw(i, 100 + i as u32) };
            unsafe { b.write_raw(i, 200 + i as u32) };
        }
        for i in 0..16 {
            unsafe { c.write_raw(i, 300 + i as u32) };
        }
        assert_eq!(a.get(3), 103);
        assert_eq!(b.get(3), 203);
        assert_eq!(c.get(15), 315);
        assert_eq!(c.capacity(), 16);
    }

    #[test]
    fn dropping_arena_returns_words() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(1000));
        {
            let arena = Arena::new(
                &d,
                &[ClassSpec {
                    slab_words: 128,
                    slabs: 4,
                }],
            )
            .unwrap();
            let _held = arena.acquire(0).unwrap();
            assert_eq!(d.allocated_words(), 512);
        }
        assert_eq!(d.allocated_words(), 0, "carve returned on drop");
    }

    #[test]
    fn carve_larger_than_device_is_oom() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(100));
        assert!(matches!(
            Arena::new(
                &d,
                &[ClassSpec {
                    slab_words: 64,
                    slabs: 2,
                }],
            ),
            Err(DeviceError::OutOfMemory { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_slab_words_rejected() {
        let d = Device::new(DeviceConfig::test_small());
        let _ = Arena::new(
            &d,
            &[ClassSpec {
                slab_words: 100,
                slabs: 1,
            }],
        );
    }

    #[test]
    fn traced_lifecycle_emits_arena_events() {
        let mut d = Device::new(DeviceConfig::test_small());
        let trace = Trace::enabled();
        d.set_trace(trace.clone());
        let arena = Arena::new(
            &d,
            &[ClassSpec {
                slab_words: 32,
                slabs: 2,
            }],
        )
        .unwrap();
        let s = arena.acquire(0).unwrap();
        drop(s);
        let names: Vec<String> = trace
            .journal()
            .unwrap()
            .drain_sorted()
            .into_iter()
            .filter(|e| e.kind == EventKind::Arena)
            .map(|e| e.name)
            .collect();
        assert_eq!(names, ["carve", "acquire", "high_water", "release"]);
    }

    #[test]
    fn stats_render_as_json() {
        let d = Device::new(DeviceConfig::test_small());
        let arena = Arena::new(
            &d,
            &[ClassSpec {
                slab_words: 64,
                slabs: 3,
            }],
        )
        .unwrap();
        let _s = arena.acquire(0).unwrap();
        let j = arena.stats().to_json();
        assert_eq!(j.get("device_allocs").unwrap().as_u64(), Some(1));
        let Some(Json::Arr(classes)) = j.get("classes") else {
            panic!("classes must be an array");
        };
        assert_eq!(classes[0].get("in_use").unwrap().as_u64(), Some(1));
        cuts_obs::Json::parse(&j.render()).unwrap();
    }
}
