//! The simulated device: allocation ledger, kernel launch, counters.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cuts_obs::flight::{self, FlightCode};
use cuts_obs::{Arg, EventKind, Registry, Trace, SM_LANE_BASE};
use rayon::prelude::*;

use crate::buffer::GlobalBuffer;
use crate::config::DeviceConfig;
use crate::counters::{AtomicCounters, BlockCounters, CounterScope, Counters};
use crate::error::DeviceError;

/// A simulated GPU. Cheap to share by reference; all state is internally
/// synchronised.
pub struct Device {
    config: DeviceConfig,
    /// Words currently allocated (the `cudaMemGetInfo` the paper consults
    /// when sizing the trie arrays).
    allocated: Arc<AtomicUsize>,
    /// Lifetime count of [`Device::alloc_buffer`] calls (`cudaMalloc`
    /// invocations). Never reset: the buffer pool's reuse guarantee is
    /// asserted as "this number did not move".
    alloc_calls: AtomicU64,
    counters: AtomicCounters,
    trace: Trace,
    registry: Registry,
}

impl Device {
    /// Creates a device with the given configuration. Tracing starts
    /// disabled; see [`Device::set_trace`].
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            config,
            allocated: Arc::new(AtomicUsize::new(0)),
            alloc_calls: AtomicU64::new(0),
            counters: AtomicCounters::default(),
            trace: Trace::disabled(),
            registry: Registry::disabled(),
        }
    }

    /// Attaches a trace handle: every subsequent launch emits a
    /// [`EventKind::Kernel`] span carrying the launch's counter delta (and,
    /// when the trace config asks for `per_block`, one span per block on an
    /// `SM n` lane).
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Attaches a serving-metrics registry: every subsequent launch
    /// records its wall time into a per-kernel `cuts_kernel_wall_us`
    /// histogram and a [`FlightCode::KernelLaunch`] flight event. A
    /// disabled registry (the default) keeps the launch path at one
    /// branch per launch.
    pub fn set_registry(&mut self, registry: Registry) {
        self.registry = registry;
    }

    /// The serving-metrics registry launches record into (disabled by
    /// default).
    #[inline]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The trace handle launches emit into (disabled by default). Shared
    /// by collaborators that account work to this device, e.g. the buffer
    /// pool.
    #[inline]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Device configuration.
    #[inline]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Free global-memory words (`cudaMemGetInfo` analogue).
    pub fn free_words(&self) -> usize {
        self.config
            .global_mem_words
            .saturating_sub(self.allocated.load(Ordering::Acquire))
    }

    /// Words currently allocated.
    pub fn allocated_words(&self) -> usize {
        self.allocated.load(Ordering::Acquire)
    }

    /// Number of `alloc_buffer` calls made over this device's lifetime
    /// (successful or not). Unlike [`Device::counters`], this is never
    /// reset — allocation is a host-side lifecycle event, not a kernel
    /// metric — so "the warm path allocates nothing" is checked by taking
    /// the value before and after.
    pub fn alloc_calls(&self) -> u64 {
        self.alloc_calls.load(Ordering::Relaxed)
    }

    /// Opens a counter scope: a snapshot against which
    /// [`CounterScope::elapsed`] later reports the delta. Unlike
    /// [`Device::reset_counters`], scopes do not clobber device-global
    /// state, so runs sharing one device can each account their own work.
    pub fn counter_scope(&self) -> CounterScope {
        CounterScope::new(self.counters.snapshot())
    }

    /// Allocates a capacity-accounted buffer; fails like `cudaMalloc` when
    /// the budget is exhausted. Freed automatically when the buffer drops.
    pub fn alloc_buffer(&self, words: usize) -> Result<GlobalBuffer, DeviceError> {
        self.alloc_calls.fetch_add(1, Ordering::Relaxed);
        let prev = self.allocated.fetch_add(words, Ordering::AcqRel);
        if prev + words > self.config.global_mem_words {
            self.allocated.fetch_sub(words, Ordering::AcqRel);
            return Err(DeviceError::OutOfMemory {
                requested: words,
                available: self.config.global_mem_words.saturating_sub(prev),
            });
        }
        Ok(GlobalBuffer::with_ledger(words, self.allocated.clone()))
    }

    /// Launches a kernel: `num_blocks` thread blocks, each running `f` once
    /// with its own [`BlockCtx`]. Blocks execute in parallel on the host
    /// thread pool; per-block counters merge into the device aggregate when
    /// each block retires. A block may fail (e.g. a buffer overflow); the
    /// first failure is returned after all blocks finish, matching the
    /// "kernel completes, error checked after" CUDA model.
    pub fn launch<F>(&self, num_blocks: usize, f: F) -> Result<(), DeviceError>
    where
        F: Fn(&mut BlockCtx) -> Result<(), DeviceError> + Sync,
    {
        self.launch_named("kernel", num_blocks, f)
    }

    /// [`Device::launch`] with a kernel name for the trace. When a trace is
    /// attached the launch is recorded as one [`EventKind::Kernel`] span
    /// carrying the grid size and the launch's counter delta; with
    /// `per_block` tracing each block additionally gets its own span on an
    /// `SM n` lane (blocks scheduled round-robin over the configured SMs).
    pub fn launch_named<F>(&self, name: &str, num_blocks: usize, f: F) -> Result<(), DeviceError>
    where
        F: Fn(&mut BlockCtx) -> Result<(), DeviceError> + Sync,
    {
        let mut span = if self.trace.is_enabled() {
            let mut s = self.trace.span(EventKind::Kernel, name);
            s.arg("blocks", Arg::U64(num_blocks as u64));
            Some(s)
        } else {
            None
        };
        let per_block = self.trace.is_enabled() && self.trace.config().per_block;
        let launch_start = self.registry.is_enabled().then(std::time::Instant::now);
        // Blocks accumulate into a launch-local aggregate; the exact total
        // is merged once into the device aggregate and the calling thread's
        // counter sink after the grid joins. (Snapshot deltas would count
        // concurrent launches from other threads into this one's span.)
        let launch = AtomicCounters::default();
        let result = (0..num_blocks)
            .into_par_iter()
            .map(|block_id| {
                let mut ctx = BlockCtx {
                    block_id,
                    num_blocks,
                    counters: BlockCounters::default(),
                    shared_capacity: self.config.shared_mem_words_per_block,
                    shared_used: 0,
                };
                let r = if per_block {
                    let mut s = self.trace.span(EventKind::Kernel, name);
                    s.lane(SM_LANE_BASE + (block_id % self.config.num_sms) as u32);
                    s.arg("block", Arg::U64(block_id as u64));
                    let r = f(&mut ctx);
                    s.counters(ctx.counters.c.into());
                    r
                } else {
                    f(&mut ctx)
                };
                launch.merge(&ctx.counters.c);
                r
            })
            .reduce(|| Ok(()), |a, b| a.and(b));
        let mut total = launch.snapshot();
        total.kernel_launches += 1;
        self.counters.merge(&total);
        crate::counters::sink_merge(&total);
        if let Some(s) = &mut span {
            s.counters(total.into());
        }
        if let Some(start) = launch_start {
            let wall_us = start.elapsed().as_micros() as u64;
            self.registry
                .histogram(
                    "cuts_kernel_wall_us",
                    &[("kernel", name)],
                    "Host wall time per kernel launch, microseconds",
                )
                .record(wall_us);
            flight::record(FlightCode::KernelLaunch, num_blocks as u64, wall_us);
        }
        result
    }

    /// Runs a single implicit block on the calling thread (for tiny kernels
    /// like the initial candidate filter where launch overhead dominates).
    pub fn run_single_block<F, T>(&self, f: F) -> T
    where
        F: FnOnce(&mut BlockCtx) -> T,
    {
        self.run_single_block_named("single_block", f)
    }

    /// [`Device::run_single_block`] with a kernel name for the trace.
    pub fn run_single_block_named<F, T>(&self, name: &str, f: F) -> T
    where
        F: FnOnce(&mut BlockCtx) -> T,
    {
        let mut span = if self.trace.is_enabled() {
            let mut s = self.trace.span(EventKind::Kernel, name);
            s.arg("blocks", Arg::U64(1));
            Some(s)
        } else {
            None
        };
        let launch_start = self.registry.is_enabled().then(std::time::Instant::now);
        let mut ctx = BlockCtx {
            block_id: 0,
            num_blocks: 1,
            counters: BlockCounters::default(),
            shared_capacity: self.config.shared_mem_words_per_block,
            shared_used: 0,
        };
        let out = f(&mut ctx);
        let mut total = ctx.counters.c;
        total.kernel_launches = 1;
        self.counters.merge(&total);
        crate::counters::sink_merge(&total);
        if let Some(s) = &mut span {
            s.counters(total.into());
        }
        if let Some(start) = launch_start {
            let wall_us = start.elapsed().as_micros() as u64;
            self.registry
                .histogram(
                    "cuts_kernel_wall_us",
                    &[("kernel", name)],
                    "Host wall time per kernel launch, microseconds",
                )
                .record(wall_us);
            flight::record(FlightCode::KernelLaunch, 1, wall_us);
        }
        out
    }

    /// Aggregate hardware counters since the last reset.
    pub fn counters(&self) -> Counters {
        self.counters.snapshot()
    }

    /// Zeroes the hardware counters.
    pub fn reset_counters(&self) {
        self.counters.reset();
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.config.name)
            .field("allocated_words", &self.allocated_words())
            .finish()
    }
}

/// Per-thread-block execution context handed to kernels.
pub struct BlockCtx {
    /// This block's index in the grid.
    pub block_id: usize,
    /// Grid size.
    pub num_blocks: usize,
    /// Metric counters (merged into the device when the block retires).
    pub counters: BlockCounters,
    shared_capacity: usize,
    shared_used: usize,
}

impl BlockCtx {
    /// Claims `words` of shared memory for the block's lifetime, returning
    /// a zeroed scratch vector (host-side stand-in for `__shared__`).
    /// Exceeding the per-block capacity is a launch-configuration bug, so
    /// it fails loudly.
    pub fn alloc_shared(&mut self, words: usize) -> Result<Vec<u32>, DeviceError> {
        if self.shared_used + words > self.shared_capacity {
            return Err(DeviceError::OutOfMemory {
                requested: words,
                available: self.shared_capacity - self.shared_used,
            });
        }
        self.shared_used += words;
        Ok(vec![0u32; words])
    }

    /// Shared-memory words still free in this block.
    pub fn shared_remaining(&self) -> usize {
        self.shared_capacity - self.shared_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_accounting_and_oom() {
        let d = Device::new(DeviceConfig::test_small().with_global_mem_words(100));
        let b1 = d.alloc_buffer(60).unwrap();
        assert_eq!(d.free_words(), 40);
        match d.alloc_buffer(50) {
            Err(DeviceError::OutOfMemory {
                requested,
                available,
            }) => {
                assert_eq!(requested, 50);
                assert_eq!(available, 40);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        drop(b1);
        assert_eq!(d.free_words(), 100);
        d.alloc_buffer(100).unwrap();
    }

    #[test]
    fn launch_merges_counters() {
        let d = Device::new(DeviceConfig::test_small());
        d.launch(8, |ctx| {
            ctx.counters.dram_read_coalesced(10);
            Ok(())
        })
        .unwrap();
        let c = d.counters();
        assert_eq!(c.dram_reads, 80);
        assert_eq!(c.kernel_launches, 1);
        d.reset_counters();
        assert_eq!(d.counters().dram_reads, 0);
    }

    #[test]
    fn launch_propagates_block_errors() {
        let d = Device::new(DeviceConfig::test_small());
        let buf = d.alloc_buffer(4).unwrap();
        let err = d.launch(4, |_| {
            buf.reserve(2)?;
            Ok(())
        });
        assert!(matches!(err, Err(DeviceError::BufferOverflow { .. })));
        // Two blocks succeeded before the buffer filled.
        assert_eq!(buf.len(), 4);
    }

    #[test]
    fn shared_memory_capacity_enforced() {
        let d = Device::new(DeviceConfig::test_small());
        d.run_single_block(|ctx| {
            let a = ctx.alloc_shared(4000).unwrap();
            assert_eq!(a.len(), 4000);
            assert!(ctx.alloc_shared(200).is_err());
        });
    }

    #[test]
    fn traced_launch_emits_kernel_span_with_counter_delta() {
        let mut d = Device::new(DeviceConfig::test_small());
        let trace = Trace::enabled();
        d.set_trace(trace.clone());
        d.launch_named("expand", 4, |ctx| {
            ctx.counters.dram_read_coalesced(3);
            Ok(())
        })
        .unwrap();
        let events = trace.journal().unwrap().drain_sorted();
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.kind, EventKind::Kernel);
        assert_eq!(e.name, "expand");
        assert!(matches!(e.arg("blocks"), Some(Arg::U64(4))));
        let c = e.counters.expect("launch span carries a counter delta");
        assert_eq!(c.dram_reads, 12);
        assert_eq!(c.kernel_launches, 1);
    }

    #[test]
    fn per_block_tracing_adds_sm_lane_spans() {
        let mut d = Device::new(DeviceConfig::test_small());
        let trace = Trace::with_config(cuts_obs::TraceConfig {
            per_block: true,
            ..Default::default()
        });
        d.set_trace(trace.clone());
        d.launch_named("expand", 8, |_| Ok(())).unwrap();
        let events = trace.journal().unwrap().drain_sorted();
        // 1 launch span + 8 block spans.
        assert_eq!(events.len(), 9);
        let sm_lanes: std::collections::BTreeSet<u32> = events
            .iter()
            .filter(|e| e.lane >= SM_LANE_BASE)
            .map(|e| e.lane)
            .collect();
        // test_small has 4 SMs; 8 blocks round-robin over all of them.
        assert_eq!(sm_lanes.len(), 4);
    }

    #[test]
    fn sink_captures_only_this_threads_launches() {
        use crate::counters::CounterSink;
        let d = Device::new(DeviceConfig::test_small());
        // Unrelated work already on the device aggregate.
        d.launch(2, |ctx| {
            ctx.counters.alu(100);
            Ok(())
        })
        .unwrap();
        let sink = CounterSink::install();
        d.launch(4, |ctx| {
            ctx.counters.dram_read_coalesced(3);
            Ok(())
        })
        .unwrap();
        d.run_single_block(|ctx| ctx.counters.alu(7));
        let seen = sink.snapshot();
        // Exactly this thread's two launches — no bleed from earlier work.
        assert_eq!(seen.dram_reads, 12);
        assert_eq!(seen.instructions, 12 + 7);
        assert_eq!(seen.kernel_launches, 2);
        // The device aggregate still has everything.
        assert_eq!(d.counters().instructions, 200 + 12 + 7);
        assert_eq!(d.counters().kernel_launches, 3);
    }

    #[test]
    fn registry_tap_records_kernel_wall_histograms() {
        let mut d = Device::new(DeviceConfig::test_small());
        let reg = Registry::enabled();
        d.set_registry(reg.clone());
        d.launch_named("expand", 4, |_| Ok(())).unwrap();
        d.launch_named("expand", 4, |_| Ok(())).unwrap();
        d.run_single_block_named("filter", |_| ());
        let h = |kernel: &str| {
            reg.histogram("cuts_kernel_wall_us", &[("kernel", kernel)], "")
                .count()
        };
        assert_eq!(h("expand"), 2);
        assert_eq!(h("filter"), 1);
        // A disabled registry records nothing (the default path).
        let d2 = Device::new(DeviceConfig::test_small());
        assert!(!d2.registry().is_enabled());
        d2.launch_named("expand", 2, |_| Ok(())).unwrap();
    }

    #[test]
    fn single_block_counts_launch() {
        let d = Device::new(DeviceConfig::test_small());
        let out = d.run_single_block(|ctx| {
            ctx.counters.alu(5);
            42
        });
        assert_eq!(out, 42);
        assert_eq!(d.counters().instructions, 5);
        assert_eq!(d.counters().kernel_launches, 1);
    }
}
