//! Device-style collective primitives with counter accounting.
//!
//! Two-pass engines lean on these: GSI's join counts per-path results,
//! runs an **exclusive scan** over the counts to get write offsets, and
//! scatters. The primitives here model the standard work-efficient
//! implementations (Blelloch scan: ~2n ops over shared memory plus one
//! global read and write per element) so that engines built on them incur
//! honest traffic.

use crate::counters::BlockCounters;

/// Exclusive prefix sum: returns `n + 1` offsets with `out[0] = 0` and
/// `out[n]` = total. Charges one global read and write per element plus
/// the ~2n shared-memory ops of a work-efficient scan.
pub fn exclusive_scan(ctr: &mut BlockCounters, input: &[u32]) -> Vec<u32> {
    let n = input.len();
    ctr.dram_read_coalesced(n);
    ctr.shmem_write(n);
    ctr.shmem_read(n);
    ctr.alu(2 * n);
    ctr.dram_write(n + 1);
    let mut out = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    out.push(0);
    for &x in input {
        acc += x;
        out.push(acc);
    }
    out
}

/// Sum reduction. Charges one global read per element and the log-tree
/// ALU work.
pub fn reduce_sum(ctr: &mut BlockCounters, input: &[u32]) -> u64 {
    let n = input.len();
    ctr.dram_read_coalesced(n);
    ctr.alu(n + n.next_power_of_two().trailing_zeros() as usize);
    input.iter().map(|&x| x as u64).sum()
}

/// Stream compaction: keeps elements satisfying `pred`, preserving order.
/// Models the scan-then-scatter implementation: a flag pass, a scan, and
/// a scattered write of survivors.
pub fn compact<F>(ctr: &mut BlockCounters, input: &[u32], mut pred: F) -> Vec<u32>
where
    F: FnMut(u32) -> bool,
{
    let n = input.len();
    ctr.dram_read_coalesced(n);
    ctr.alu(n); // predicate evaluation
    let flags: Vec<u32> = input.iter().map(|&x| pred(x) as u32).collect();
    let offsets = exclusive_scan(ctr, &flags);
    let kept = offsets[n] as usize;
    ctr.dram_write(kept);
    input
        .iter()
        .zip(flags.iter())
        .filter(|(_, &f)| f == 1)
        .map(|(&x, _)| x)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_offsets() {
        let mut ctr = BlockCounters::default();
        let out = exclusive_scan(&mut ctr, &[3, 0, 5, 2]);
        assert_eq!(out, vec![0, 3, 3, 8, 10]);
        assert_eq!(ctr.c.dram_reads, 4);
        assert_eq!(ctr.c.dram_writes, 5);
        assert!(ctr.c.shmem_writes >= 4);
    }

    #[test]
    fn scan_empty() {
        let mut ctr = BlockCounters::default();
        assert_eq!(exclusive_scan(&mut ctr, &[]), vec![0]);
    }

    #[test]
    fn reduce() {
        let mut ctr = BlockCounters::default();
        assert_eq!(reduce_sum(&mut ctr, &[1, 2, 3, 4]), 10);
        assert_eq!(reduce_sum(&mut ctr, &[]), 0);
        // Overflow-safe: sums into u64.
        assert_eq!(reduce_sum(&mut ctr, &[u32::MAX, 1]), u32::MAX as u64 + 1);
    }

    #[test]
    fn compaction_preserves_order() {
        let mut ctr = BlockCounters::default();
        let out = compact(&mut ctr, &[5, 2, 9, 4, 7], |x| x > 4);
        assert_eq!(out, vec![5, 9, 7]);
        let none = compact(&mut ctr, &[1, 2], |_| false);
        assert!(none.is_empty());
    }
}
