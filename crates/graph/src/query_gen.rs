//! The paper's query sets (§6.2): "we generated all possible five node
//! graphs and then sorted them by the total number of edges in decreasing
//! order and selected the top 11 as the query graphs ... a similar procedure
//! was carried out for six node and seven node query graphs."
//!
//! We enumerate densest-first by *deleting* edge subsets from `K_n`: a graph
//! with `E - r` edges is `K_n` minus an `r`-subset, so enumerating `r = 0,
//! 1, 2, …` yields graphs in strictly decreasing edge order. Each candidate
//! is deduplicated by exact canonical form and filtered for connectivity.
//! Ties at equal edge count are broken deterministically by canonical form
//! (the paper broke them randomly; determinism is preferable for a
//! reproducible harness).

use crate::canonical::{canonical_form, graph_from_bits, isomorphic_backtrack};
use crate::graph::{Graph, VertexId};

/// A named query graph from the generated set.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    /// e.g. `q5_0` = densest 5-vertex query (the 5-clique).
    pub name: String,
    /// Undirected query graph (symmetrised).
    pub graph: Graph,
    /// Undirected edge count.
    pub num_edges: usize,
}

fn all_pairs(n: usize) -> Vec<(VertexId, VertexId)> {
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            pairs.push((u as VertexId, v as VertexId));
        }
    }
    pairs
}

fn bits_without(n: usize, pairs: &[(VertexId, VertexId)], removed: &[usize]) -> u64 {
    let mut bits = 0u64;
    for (i, &(u, v)) in pairs.iter().enumerate() {
        if removed.contains(&i) {
            continue;
        }
        bits |= 1u64 << (u as usize * n + v as usize);
        bits |= 1u64 << (v as usize * n + u as usize);
    }
    bits
}

fn is_connected_bits(n: usize, bits: u64) -> bool {
    let mut seen = 1u64; // vertex 0
    let mut stack = vec![0usize];
    while let Some(u) = stack.pop() {
        for v in 0..n {
            if seen & (1 << v) == 0 && bits & (1u64 << (u * n + v)) != 0 {
                seen |= 1 << v;
                stack.push(v);
            }
        }
    }
    seen.count_ones() as usize == n
}

/// Enumerates all `r`-subsets of `0..m`, invoking `f` on each.
fn for_each_subset(m: usize, r: usize, f: &mut impl FnMut(&[usize])) {
    fn rec(m: usize, r: usize, start: usize, cur: &mut Vec<usize>, f: &mut impl FnMut(&[usize])) {
        if cur.len() == r {
            f(cur);
            return;
        }
        let need = r - cur.len();
        for i in start..=(m - need) {
            cur.push(i);
            rec(m, r, i + 1, cur, f);
            cur.pop();
        }
    }
    if r == 0 {
        f(&[]);
    } else if r <= m {
        rec(m, r, 0, &mut Vec::with_capacity(r), f);
    }
}

/// Generates the top-`k` densest non-isomorphic connected undirected graphs
/// on `n` vertices (the paper uses `n ∈ {5, 6, 7}`, `k = 11`). Results are
/// sorted by edge count descending, ties by canonical form ascending.
pub fn query_set(n: usize, k: usize) -> Vec<QueryGraph> {
    assert!(
        (2..=7).contains(&n),
        "query enumeration supports 2..=7 vertices"
    );
    let pairs = all_pairs(n);
    let full = pairs.len();
    let mut out: Vec<(usize, u64)> = Vec::new(); // (edges, canonical bits)
    for removed_count in 0..=full {
        if out.len() >= k {
            break;
        }
        // Dedup within the level via fast backtracking isomorphism (the
        // exhaustive canonical form would visit n! relabellings for each
        // of the thousands of removal subsets); representatives are
        // canonicalised once at the end for a deterministic ordering.
        let mut reps: Vec<(u64, Graph)> = Vec::new(); // (raw bits, graph)
        for_each_subset(full, removed_count, &mut |removed| {
            let bits = bits_without(n, &pairs, removed);
            if !is_connected_bits(n, bits) {
                return;
            }
            let g = graph_from_bits(n, bits);
            if !reps.iter().any(|(_, r)| isomorphic_backtrack(r, &g)) {
                reps.push((bits, g));
            }
        });
        let mut canon_this_level: Vec<u64> = reps
            .iter()
            .map(|&(bits, _)| canonical_form(n, bits))
            .collect();
        canon_this_level.sort_unstable();
        for canon in canon_this_level {
            out.push((full - removed_count, canon));
        }
    }
    out.truncate(k);
    out.into_iter()
        .enumerate()
        .map(|(i, (edges, canon))| {
            let directed = graph_from_bits(n, canon);
            // Rebuild as an undirected graph (the canonical bits are
            // symmetric, so collapse arcs to undirected edges).
            let und: Vec<_> = directed.edges().filter(|&(u, v)| u < v).collect();
            QueryGraph {
                name: format!("q{n}_{i}"),
                graph: Graph::undirected(n, &und),
                num_edges: edges,
            }
        })
        .collect()
}

/// The full 33-query evaluation set of the paper: top-11 for 5, 6 and 7
/// vertices.
pub fn paper_query_suite() -> Vec<QueryGraph> {
    let mut all = Vec::with_capacity(33);
    for n in [5usize, 6, 7] {
        all.extend(query_set(n, 11));
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::canonicalize;
    use crate::components::weakly_connected_components;

    #[test]
    fn densest_is_clique() {
        let qs = query_set(5, 11);
        assert_eq!(qs.len(), 11);
        assert_eq!(qs[0].num_edges, 10); // K5
        assert_eq!(
            canonicalize(&qs[0].graph),
            canonicalize(&crate::generators::clique(5))
        );
    }

    #[test]
    fn edge_counts_non_increasing() {
        let qs = query_set(5, 11);
        assert!(qs.windows(2).all(|w| w[0].num_edges >= w[1].num_edges));
    }

    #[test]
    fn all_pairwise_non_isomorphic() {
        let qs = query_set(5, 11);
        for i in 0..qs.len() {
            for j in (i + 1)..qs.len() {
                assert!(
                    !crate::canonical::are_isomorphic(&qs[i].graph, &qs[j].graph),
                    "{} and {} isomorphic",
                    qs[i].name,
                    qs[j].name
                );
            }
        }
    }

    #[test]
    fn all_connected() {
        for q in query_set(6, 11) {
            let c = weakly_connected_components(&q.graph);
            assert_eq!(c.num_components(), 1, "{} disconnected", q.name);
        }
    }

    #[test]
    fn known_level_counts() {
        // K5 minus 1 edge: exactly 1 graph; minus 2 edges: 2 graphs
        // (removed pair shares a vertex or not).
        let qs = query_set(5, 11);
        let at = |e: usize| qs.iter().filter(|q| q.num_edges == e).count();
        assert_eq!(at(10), 1);
        assert_eq!(at(9), 1);
        assert_eq!(at(8), 2);
    }

    #[test]
    fn paper_suite_has_33() {
        let suite = paper_query_suite();
        assert_eq!(suite.len(), 33);
        assert_eq!(
            suite.iter().filter(|q| q.graph.num_vertices() == 7).count(),
            11
        );
    }

    #[test]
    fn seven_vertex_densest() {
        let qs = query_set(7, 3);
        assert_eq!(qs[0].num_edges, 21); // K7
        assert_eq!(qs[1].num_edges, 20);
    }
}
