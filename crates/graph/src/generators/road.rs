//! Road-network-like graphs: near-regular, low-degree, high-diameter.
//!
//! The paper's roadNet-{PA,TX,CA} datasets have average degree ≈ 1.4-2.8 and
//! a planar grid-like structure; the cuTS speedups there are the largest
//! (geomean 329-430×) because tries compress regular sparse frontiers well.
//! This generator perturbs a 2-D grid: it removes a fraction of grid edges
//! and adds a few diagonal shortcuts, mimicking the irregular lattice of a
//! road map while keeping degrees in the 1..5 range.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, VertexId};

/// Perturbed-grid road network over roughly `n` vertices with edge/vertex
/// ratio tuned by `density` (roadNet-CA ≈ 1.4, use ~0.7 per grid edge kept).
/// `drop_fraction` removes grid edges; `shortcut_fraction` adds diagonals.
pub fn road_network(n: usize, drop_fraction: f64, shortcut_fraction: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&drop_fraction));
    let side = (n as f64).sqrt().ceil() as usize;
    let rows = side;
    let cols = n.div_ceil(side);
    let total = rows * cols;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as VertexId;
            if c + 1 < cols && rng.random_range(0.0..1.0) >= drop_fraction {
                edges.push((id, id + 1));
            }
            if r + 1 < rows && rng.random_range(0.0..1.0) >= drop_fraction {
                edges.push((id, id + cols as VertexId));
            }
            // Occasional diagonal "shortcut" roads.
            if r + 1 < rows && c + 1 < cols && rng.random_range(0.0..1.0) < shortcut_fraction {
                edges.push((id, id + cols as VertexId + 1));
            }
        }
    }
    Graph::undirected(total, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_degree_structure() {
        let g = road_network(10_000, 0.3, 0.05, 17);
        // Grid degree ≤ 4 plus up to two incident diagonals and an outgoing
        // one: bounded by 7, like real intersections.
        assert!(g.max_out_degree() <= 7);
        let avg = g.avg_out_degree();
        assert!(avg > 1.5 && avg < 4.0, "avg degree {avg}");
    }

    #[test]
    fn deterministic() {
        let a = road_network(1000, 0.3, 0.05, 1);
        let b = road_network(1000, 0.3, 0.05, 1);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn zero_drop_keeps_grid() {
        let g = road_network(16, 0.0, 0.0, 1);
        // 4x4 grid => 24 undirected edges.
        assert_eq!(g.num_input_edges(), 24);
    }
}
