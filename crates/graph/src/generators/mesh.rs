//! 2-D mesh, the data graph of the paper's Figure 2(A).

use crate::graph::{Graph, VertexId};

/// `rows × cols` grid with 4-neighbour connectivity; vertex `(r, c)` has id
/// `r * cols + c`. `mesh2d(4, 4)` is exactly Figure 2(A).
pub fn mesh2d(rows: usize, cols: usize) -> Graph {
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as VertexId;
            if c + 1 < cols {
                edges.push((id, id + 1));
            }
            if r + 1 < rows {
                edges.push((id, id + cols as VertexId));
            }
        }
    }
    Graph::undirected(rows * cols, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2a_counts() {
        // 4x4 mesh: 16 vertices, 24 undirected edges = 48 arcs.
        let g = mesh2d(4, 4);
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_input_edges(), 24);
        assert_eq!(g.num_edges(), 48);
    }

    #[test]
    fn corner_edge_interior_degrees() {
        let g = mesh2d(4, 4);
        assert_eq!(g.out_degree(0), 2); // corner
        assert_eq!(g.out_degree(1), 3); // edge
        assert_eq!(g.out_degree(5), 4); // interior
    }

    #[test]
    fn degenerate_meshes() {
        assert_eq!(mesh2d(1, 5).num_input_edges(), 4); // a chain
        assert_eq!(mesh2d(1, 1).num_edges(), 0);
    }
}
