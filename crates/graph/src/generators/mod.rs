//! Synthetic graph generators.
//!
//! These provide the workloads for tests, examples, and — through
//! [`crate::datasets`] — the stand-ins for the paper's six SNAP datasets.
//! All generators are deterministic given a seed.

mod classic;
mod er;
mod mesh;
mod powerlaw;
mod rmat;
mod road;

pub use classic::{chain, clique, complete_bipartite, cycle, star};
pub use er::erdos_renyi;
pub use mesh::mesh2d;
pub use powerlaw::{barabasi_albert, chung_lu, power_law_weights};
pub use rmat::{rmat, RmatParams};
pub use road::road_network;
