//! Degree-skewed random graphs: Chung-Lu and Barabási–Albert.
//!
//! The paper's hard datasets (enron, gowalla, wikiTalk) are heavy-tailed;
//! the candidate explosion the trie exists to absorb (§4.1.1, Eq. 1-5) is a
//! function of that skew, so the stand-ins must reproduce it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, VertexId};

/// Power-law weight sequence `w_i ∝ (i + 1)^(-1/(β-1))` scaled so the sum is
/// `2m` — the expected-degree input to Chung-Lu for target edge count `m`
/// and exponent `β` (typical social graphs: β ∈ [2, 3)).
pub fn power_law_weights(n: usize, m: usize, beta: f64) -> Vec<f64> {
    assert!(beta > 1.0, "power-law exponent must exceed 1");
    let alpha = 1.0 / (beta - 1.0);
    let mut w: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-alpha)).collect();
    let sum: f64 = w.iter().sum();
    let scale = (2 * m) as f64 / sum;
    for x in &mut w {
        *x *= scale;
    }
    w
}

/// Chung-Lu sampling: emits ~`m` undirected edges with P(u,v) ∝ w_u · w_v,
/// using weighted endpoint sampling. Preserves the prescribed degree skew in
/// expectation. Deterministic for a seed.
pub fn chung_lu(n: usize, m: usize, beta: f64, seed: u64) -> Graph {
    assert!(n >= 2);
    let w = power_law_weights(n, m, beta);
    // Cumulative distribution over vertices for weighted sampling.
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &x in &w {
        acc += x;
        cdf.push(acc);
    }
    let total = acc;
    let mut rng = SmallRng::seed_from_u64(seed);
    let sample = |rng: &mut SmallRng| -> VertexId {
        let t = rng.random_range(0.0..total);
        match cdf.binary_search_by(|p| p.partial_cmp(&t).unwrap()) {
            Ok(i) | Err(i) => (i.min(n - 1)) as VertexId,
        }
    };
    let mut edges = Vec::with_capacity(m);
    let mut attempts = 0usize;
    while edges.len() < m && attempts < 20 * m {
        attempts += 1;
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::undirected(n, &edges)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to `k`
/// existing vertices chosen proportionally to degree. Produces a connected
/// heavy-tailed graph. Deterministic for a seed.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> Graph {
    assert!(k >= 1 && n > k, "need n > k >= 1");
    let mut rng = SmallRng::seed_from_u64(seed);
    // `targets` holds one entry per edge endpoint: sampling uniformly from it
    // is sampling proportionally to degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * k);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k);
    // Seed with a (k+1)-clique so early attachment targets exist.
    for u in 0..=(k as VertexId) {
        for v in (u + 1)..=(k as VertexId) {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for new in (k + 1)..n {
        let new = new as VertexId;
        let mut chosen = Vec::with_capacity(k);
        while chosen.len() < k {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != new && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            edges.push((new, t));
            endpoints.push(new);
            endpoints.push(t);
        }
    }
    Graph::undirected(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_two_m() {
        let w = power_law_weights(1000, 5000, 2.5);
        let sum: f64 = w.iter().sum();
        assert!((sum - 10_000.0).abs() < 1e-6);
        // Monotone decreasing.
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
    }

    #[test]
    fn chung_lu_is_skewed() {
        let g = chung_lu(2000, 10_000, 2.2, 42);
        let max = g.max_out_degree() as f64;
        let avg = g.avg_out_degree();
        // Heavy tail: max degree far above average.
        assert!(max > 8.0 * avg, "expected skew, got max {max} avg {avg}");
    }

    #[test]
    fn chung_lu_deterministic() {
        let a = chung_lu(500, 2000, 2.5, 9);
        let b = chung_lu(500, 2000, 2.5, 9);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }

    #[test]
    fn ba_connected_and_sized() {
        let g = barabasi_albert(300, 3, 5);
        assert_eq!(g.num_vertices(), 300);
        // clique seed edges + k per newcomer
        let expected = 3 * 2 + (300 - 4) * 3;
        assert_eq!(g.num_input_edges(), expected);
        let comps = crate::components::weakly_connected_components(&g);
        assert_eq!(comps.num_components(), 1);
    }

    #[test]
    fn ba_hub_emerges() {
        let g = barabasi_albert(1000, 2, 11);
        assert!(g.max_out_degree() > 20);
    }
}
