//! R-MAT recursive-matrix random graphs (Chakrabarti, Zhan, Faloutsos,
//! SDM'04) — the standard scale-free generator of the Graph500 benchmark,
//! provided as an alternative heavy-tailed stand-in family.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, VertexId};

/// R-MAT edge probabilities for the four quadrants. Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability (the "home" corner; large `a` gives
    /// strong skew).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl Default for RmatParams {
    /// The Graph500 parameters (a=0.57, b=0.19, c=0.19, d=0.05).
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
        }
    }
}

/// Samples an undirected R-MAT graph with `2^scale` vertices and ~`m`
/// edges. Deterministic for a seed.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Graph {
    assert!((1..=26).contains(&scale), "scale out of supported range");
    let sum = params.a + params.b + params.c + params.d;
    assert!(
        (sum - 1.0).abs() < 1e-9,
        "quadrant probabilities must sum to 1"
    );
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (mut lo_u, mut lo_v) = (0usize, 0usize);
        let mut half = n / 2;
        while half >= 1 {
            let t = rng.random_range(0.0..1.0);
            let (du, dv) = if t < params.a {
                (0, 0)
            } else if t < params.a + params.b {
                (0, 1)
            } else if t < params.a + params.b + params.c {
                (1, 0)
            } else {
                (1, 1)
            };
            lo_u += du * half;
            lo_v += dv * half;
            half /= 2;
        }
        if lo_u != lo_v {
            edges.push((lo_u as VertexId, lo_v as VertexId));
        }
    }
    Graph::undirected(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_determinism() {
        let g = rmat(10, 4000, RmatParams::default(), 7);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_input_edges() > 3000); // some dedup/self-loop loss
        let h = rmat(10, 4000, RmatParams::default(), 7);
        assert_eq!(g.edges().collect::<Vec<_>>(), h.edges().collect::<Vec<_>>());
    }

    #[test]
    fn graph500_params_are_skewed() {
        let g = rmat(11, 8000, RmatParams::default(), 3);
        let avg = g.avg_out_degree();
        assert!(
            g.max_out_degree() as f64 > 6.0 * avg,
            "max {} avg {avg}",
            g.max_out_degree()
        );
    }

    #[test]
    fn uniform_params_are_flat() {
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
        };
        let g = rmat(10, 8000, p, 3);
        // Uniform quadrants degenerate to Erdős–Rényi-like degrees.
        assert!((g.max_out_degree() as f64) < 5.0 * g.avg_out_degree());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_params_rejected() {
        rmat(
            8,
            10,
            RmatParams {
                a: 0.9,
                b: 0.9,
                c: 0.0,
                d: 0.0,
            },
            1,
        );
    }
}
