//! Small deterministic graph families (mostly used as query graphs).

use crate::graph::{Graph, VertexId};

/// Complete graph `K_n` (undirected, symmetrised).
pub fn clique(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u as VertexId, v as VertexId));
        }
    }
    Graph::undirected(n, &edges)
}

/// Path graph `P_n` (the paper's Figure 2(B) query for n = 4).
pub fn chain(n: usize) -> Graph {
    let edges: Vec<_> = (0..n.saturating_sub(1))
        .map(|i| (i as VertexId, (i + 1) as VertexId))
        .collect();
    Graph::undirected(n, &edges)
}

/// Cycle graph `C_n`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<_> = (0..n - 1)
        .map(|i| (i as VertexId, (i + 1) as VertexId))
        .collect();
    edges.push(((n - 1) as VertexId, 0));
    Graph::undirected(n, &edges)
}

/// Star `K_{1,n-1}` with the hub at vertex 0.
pub fn star(n: usize) -> Graph {
    let edges: Vec<_> = (1..n).map(|i| (0, i as VertexId)).collect();
    Graph::undirected(n, &edges)
}

/// Complete bipartite `K_{a,b}`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a {
        for v in 0..b {
            edges.push((u as VertexId, (a + v) as VertexId));
        }
    }
    Graph::undirected(a + b, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_counts() {
        let g = clique(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_input_edges(), 10);
        for v in 0..5 {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn chain_is_figure_2b() {
        let g = chain(4);
        assert_eq!(g.num_input_edges(), 3);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(1), 2);
    }

    #[test]
    fn cycle_degrees_all_two() {
        let g = cycle(6);
        assert!((0..6).all(|v| g.out_degree(v) == 2));
        assert!(g.has_edge(5, 0));
    }

    #[test]
    fn star_hub_degree() {
        let g = star(7);
        assert_eq!(g.out_degree(0), 6);
        assert!((1..7).all(|v| g.out_degree(v) == 1));
    }

    #[test]
    fn bipartite_counts() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_input_edges(), 6);
        assert!(!g.has_edge(0, 1)); // same side
        assert!(g.has_edge(0, 2));
    }
}
