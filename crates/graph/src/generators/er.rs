//! Erdős–Rényi G(n, m) random graphs.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, VertexId};

/// Uniform random undirected graph with `n` vertices and (approximately,
/// after dedup) `m` edges. Deterministic for a given seed.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    assert!(
        n >= 2 || m == 0,
        "cannot place edges on fewer than 2 vertices"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.random_range(0..n) as VertexId;
        let mut v = rng.random_range(0..n) as VertexId;
        while v == u {
            v = rng.random_range(0..n) as VertexId;
        }
        edges.push((u, v));
    }
    Graph::undirected(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = erdos_renyi(100, 300, 7);
        let b = erdos_renyi(100, 300, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = erdos_renyi(100, 300, 1);
        let b = erdos_renyi(100, 300, 2);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn edge_count_close_to_target() {
        let g = erdos_renyi(1000, 2000, 3);
        // Dedup can only lose a few collisions at this density.
        assert!(g.num_input_edges() > 1900 && g.num_input_edges() <= 2000);
    }
}
