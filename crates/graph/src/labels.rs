//! Vertex-label assignment helpers (the labelled-matching extension).
//!
//! The paper evaluates unlabelled graphs, but the systems it compares
//! against (GSI in particular) are designed for labelled RDF-style data.
//! These helpers make labelled workloads easy to synthesise: uniform
//! random labels, Zipf-skewed labels (the realistic case — label
//! frequencies in knowledge graphs are heavy-tailed), and degree-band
//! labels (deterministic, good for tests).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::{Graph, VertexId};

/// Uniform random labels from `0..num_labels`.
pub fn random_labels(n: usize, num_labels: u32, seed: u64) -> Vec<u32> {
    assert!(num_labels >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0..num_labels)).collect()
}

/// Zipf-skewed labels: label `k` has weight `1/(k+1)`, so label 0 is the
/// most frequent — the selectivity structure GSI's frequency-based
/// ordering exploits.
pub fn zipf_labels(n: usize, num_labels: u32, seed: u64) -> Vec<u32> {
    assert!(num_labels >= 1);
    let weights: Vec<f64> = (0..num_labels).map(|k| 1.0 / (k as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut t = rng.random_range(0.0..total);
            for (k, &w) in weights.iter().enumerate() {
                if t < w {
                    return k as u32;
                }
                t -= w;
            }
            num_labels - 1
        })
        .collect()
}

/// Deterministic degree-band labels: vertices bucketed by
/// `floor(log2(out_degree + 1))`, capped at `max_label`.
pub fn degree_band_labels(g: &Graph, max_label: u32) -> Vec<u32> {
    (0..g.num_vertices() as VertexId)
        .map(|v| {
            let d = g.out_degree(v);
            (32 - (d + 1).leading_zeros() - 1).min(max_label)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::star;

    #[test]
    fn random_labels_in_range() {
        let l = random_labels(500, 4, 3);
        assert_eq!(l.len(), 500);
        assert!(l.iter().all(|&x| x < 4));
        // All labels appear at this size.
        for k in 0..4 {
            assert!(l.contains(&k));
        }
        assert_eq!(l, random_labels(500, 4, 3)); // deterministic
    }

    #[test]
    fn zipf_is_skewed() {
        let l = zipf_labels(4000, 8, 5);
        let count0 = l.iter().filter(|&&x| x == 0).count();
        let count7 = l.iter().filter(|&&x| x == 7).count();
        assert!(count0 > 4 * count7, "zipf skew: {count0} vs {count7}");
    }

    #[test]
    fn degree_bands() {
        let g = star(9); // hub degree 8, leaves degree 1
        let l = degree_band_labels(&g, 10);
        assert_eq!(l[0], 3); // log2(9) floor = 3
        assert!(l[1..].iter().all(|&x| x == 1)); // log2(2) = 1
    }
}
