//! Compressed sparse row adjacency storage.

use crate::graph::VertexId;

/// Compressed-sparse-row adjacency: `offsets` has `n + 1` entries and the
/// neighbours of vertex `v` are `targets[offsets[v] .. offsets[v + 1]]`,
/// sorted ascending (which makes membership queries `O(log deg)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
}

impl Csr {
    /// Builds a CSR from a per-vertex adjacency list. Each list is sorted
    /// and deduplicated.
    pub fn from_adjacency(mut adj: Vec<Vec<VertexId>>) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0u64);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u64);
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR for `n` vertices from an edge list, in `O(|E| log |E|)`.
    /// Parallel edges are collapsed.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut degree = vec![0u64; n];
        for &(u, _) in edges {
            degree[u as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            let c = &mut cursor[u as usize];
            targets[*c as usize] = v;
            *c += 1;
        }
        // Sort and dedup each row in place.
        let mut out_targets = Vec::with_capacity(targets.len());
        let mut out_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0u64);
        for v in 0..n {
            let row = &mut targets[offsets[v] as usize..offsets[v + 1] as usize];
            row.sort_unstable();
            let mut prev: Option<VertexId> = None;
            for &t in row.iter() {
                if prev != Some(t) {
                    out_targets.push(t);
                    prev = Some(t);
                }
            }
            out_offsets.push(out_targets.len() as u64);
        }
        Csr {
            offsets: out_offsets,
            targets: out_targets,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of stored (directed) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Sorted neighbour slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Whether the directed edge `(u, v)` exists (`O(log deg(u))`).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Raw offset array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw target array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Iterates `(source, target)` over all stored edges.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |u| {
            self.neighbors(u as VertexId)
                .iter()
                .map(move |&v| (u as VertexId, v))
        })
    }

    /// Builds a CSR directly from its two arrays, validating every
    /// invariant the accessors rely on: `offsets` starts at 0, never
    /// decreases, and ends at `targets.len()`; every row is strictly
    /// ascending (sorted, no duplicates); every target is a valid vertex.
    /// This is the zero-copy ingestion path for trusted-but-verified
    /// wire input — `O(|V| + |E|)` with no sorting.
    pub fn from_sorted_parts(
        offsets: Vec<u64>,
        targets: Vec<VertexId>,
    ) -> Result<Csr, &'static str> {
        let Some(n) = offsets.len().checked_sub(1) else {
            return Err("offset array is empty");
        };
        if offsets[0] != 0 {
            return Err("offsets must start at zero");
        }
        if offsets[n] != targets.len() as u64 {
            return Err("offsets must end at the target count");
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets must be non-decreasing");
        }
        // Every offset is now known to lie in [0, targets.len()], so the
        // row slices below cannot go out of bounds. Rows are strictly
        // ascending, so only each row's last element needs the range
        // check.
        for v in 0..n {
            let row = &targets[offsets[v] as usize..offsets[v + 1] as usize];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err("row not strictly ascending");
            }
            if row.last().is_some_and(|&t| t as usize >= n) {
                return Err("target out of range");
            }
        }
        Ok(Csr { offsets, targets })
    }

    /// The transpose CSR (reverses every edge).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut degree = vec![0u64; n];
        for &t in &self.targets {
            degree[t as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut cursor = offsets.clone();
        for u in 0..n {
            for &v in self.neighbors(u as VertexId) {
                let c = &mut cursor[v as usize];
                targets[*c as usize] = u as VertexId;
                *c += 1;
            }
        }
        // Rows are already sorted: we visit sources in ascending order.
        Csr { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_sorts_and_dedups() {
        let csr = Csr::from_edges(4, &[(0, 2), (0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[] as &[VertexId]);
        assert_eq!(csr.neighbors(2), &[3]);
        assert_eq!(csr.neighbors(3), &[0]);
        assert_eq!(csr.num_edges(), 4);
    }

    #[test]
    fn from_adjacency_matches_from_edges() {
        let a = Csr::from_adjacency(vec![vec![2, 1, 2], vec![], vec![3], vec![0]]);
        let b = Csr::from_edges(4, &[(0, 2), (0, 1), (0, 2), (2, 3), (3, 0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn from_sorted_parts_accepts_valid_and_rejects_broken_input() {
        let good = Csr::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0)]);
        let rebuilt =
            Csr::from_sorted_parts(good.offsets().to_vec(), good.targets().to_vec()).unwrap();
        assert_eq!(rebuilt, good);

        assert!(Csr::from_sorted_parts(vec![], vec![]).is_err());
        assert!(Csr::from_sorted_parts(vec![1, 2], vec![0, 0]).is_err());
        assert!(Csr::from_sorted_parts(vec![0, 1], vec![0, 0]).is_err());
        // Non-monotone offsets must not panic even when an intermediate
        // value exceeds the target count.
        assert!(Csr::from_sorted_parts(vec![0, 100, 2], vec![0, 1]).is_err());
        // Unsorted and duplicated rows are rejected.
        assert!(Csr::from_sorted_parts(vec![0, 2], vec![1, 0]).is_err());
        assert!(Csr::from_sorted_parts(vec![0, 2], vec![1, 1]).is_err());
        // Targets must name real vertices.
        assert!(Csr::from_sorted_parts(vec![0, 1], vec![7]).is_err());
    }

    #[test]
    fn has_edge_and_degree() {
        let csr = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert!(csr.has_edge(0, 1));
        assert!(csr.has_edge(1, 2));
        assert!(!csr.has_edge(2, 1));
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(2), 0);
    }

    #[test]
    fn transpose_reverses_edges() {
        let csr = Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        let t = csr.transpose();
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(2, 0));
        assert!(t.has_edge(2, 1));
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.transpose(), csr);
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let input = vec![(0, 1), (1, 2), (2, 0), (2, 1)];
        let csr = Csr::from_edges(3, &input);
        let mut collected: Vec<_> = csr.edges().collect();
        collected.sort_unstable();
        let mut expect = input.clone();
        expect.sort_unstable();
        assert_eq!(collected, expect);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let csr = Csr::from_edges(5, &[(4, 0)]);
        for v in 0..4 {
            assert_eq!(csr.degree(v), 0);
        }
        assert_eq!(csr.degree(4), 1);
    }
}
