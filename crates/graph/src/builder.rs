//! Incremental edge-list builder with vertex relabelling.

use std::collections::HashMap;

use crate::graph::{Graph, VertexId};

/// Accumulates edges (possibly with sparse, non-contiguous external ids —
/// SNAP files routinely skip ids) and produces a [`Graph`] over a dense
/// `0..n` id space.
#[derive(Default, Debug, Clone)]
pub struct GraphBuilder {
    edges: Vec<(VertexId, VertexId)>,
    relabel: HashMap<u64, VertexId>,
    /// External id for each dense id, for mapping results back.
    external: Vec<u64>,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, ext: u64) -> VertexId {
        if let Some(&v) = self.relabel.get(&ext) {
            return v;
        }
        let v = self.external.len() as VertexId;
        self.relabel.insert(ext, v);
        self.external.push(ext);
        v
    }

    /// Adds an edge between external ids.
    pub fn add_edge(&mut self, u: u64, v: u64) -> &mut Self {
        let (u, v) = (self.intern(u), self.intern(v));
        self.edges.push((u, v));
        self
    }

    /// Ensures a vertex exists even if isolated.
    pub fn add_vertex(&mut self, u: u64) -> &mut Self {
        self.intern(u);
        self
    }

    /// Number of distinct vertices seen so far.
    pub fn num_vertices(&self) -> usize {
        self.external.len()
    }

    /// Number of edges added so far (before dedup).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// External id corresponding to a dense id.
    pub fn external_id(&self, v: VertexId) -> u64 {
        self.external[v as usize]
    }

    /// Finishes into a directed graph.
    pub fn build_directed(&self) -> Graph {
        Graph::directed(self.external.len(), &self.edges)
    }

    /// Finishes into an undirected (symmetrised) graph.
    pub fn build_undirected(&self) -> Graph {
        Graph::undirected(self.external.len(), &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relabels_sparse_ids() {
        let mut b = GraphBuilder::new();
        b.add_edge(1000, 7).add_edge(7, 999_999);
        assert_eq!(b.num_vertices(), 3);
        let g = b.build_directed();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(b.external_id(0), 1000);
        assert_eq!(b.external_id(1), 7);
        assert_eq!(b.external_id(2), 999_999);
    }

    #[test]
    fn isolated_vertices_survive() {
        let mut b = GraphBuilder::new();
        b.add_vertex(5).add_edge(1, 2);
        let g = b.build_undirected();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.out_degree(0), 0);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2).add_edge(1, 2).add_edge(2, 1);
        let g = b.build_undirected();
        assert_eq!(g.num_edges(), 2); // one undirected edge, two arcs
    }
}
