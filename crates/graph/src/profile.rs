//! Data-graph profiling pass: degree-bucket statistics plus a GSI-style
//! label+degree neighbourhood signature per vertex.
//!
//! The profile is computed once per data graph (lazily, cached on
//! [`Graph`]) and consumed at plan time: the degree quantiles drive the
//! per-level micro-kernel policy, and the signatures prefilter level-0
//! candidates before the Definition 5 degree test — both pure data-graph
//! properties, independent of any particular query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::graph::{Graph, VertexId};

/// Process-wide count of full profiling passes ([`DataProfile::build`]).
static PROFILE_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of profiling passes run so far in this process. Warm-start
/// tests diff this counter around a snapshot restore to prove the graph
/// was never re-profiled (a decoded profile is installed into the
/// [`Graph`] cache without a build).
pub fn profile_builds() -> u64 {
    PROFILE_BUILDS.load(Ordering::Relaxed)
}

/// Mask covering the four label lanes of a [`vertex_signature`] (bytes
/// 4–7). A query-side signature must have these lanes zeroed unless both
/// graphs are labelled, mirroring the wildcard semantics of
/// [`Graph::label_compatible`].
pub const SIG_LABEL_MASK: u64 = 0xFFFF_FFFF_0000_0000;

/// Packed 8-lane neighbourhood signature of vertex `v` (one byte per
/// lane, saturating at 255):
///
/// * lane 0 — out-neighbours whose out-degree is ≥ 2
/// * lane 1 — out-neighbours whose out-degree is ≥ 8
/// * lane 2 — in-neighbours whose in-degree is ≥ 2
/// * lane 3 — in-neighbours whose in-degree is ≥ 8
/// * lanes 4–7 — out-neighbours whose label is ≡ lane−4 (mod 4); all
///   zero on unlabelled graphs.
///
/// **Soundness.** Any embedding maps the (out/in-)neighbours of a query
/// vertex *injectively* onto (out/in-)neighbours of its image whose
/// degrees dominate and whose labels match. Each lane counts neighbours
/// satisfying a property preserved under that mapping, so every lane of
/// the query signature is a lower bound for the corresponding lane of
/// the data signature — byte-wise dominance is a *necessary* condition
/// and the prefilter can never drop a true match (label lanes only when
/// both sides are labelled; see [`required_signature`]).
pub fn vertex_signature(g: &Graph, v: VertexId) -> u64 {
    let mut lanes = [0u16; 8];
    for &w in g.out_neighbors(v) {
        let d = g.out_degree(w);
        if d >= 2 {
            lanes[0] += 1;
        }
        if d >= 8 {
            lanes[1] += 1;
        }
        if let Some(l) = g.label(w) {
            lanes[4 + (l % 4) as usize] += 1;
        }
    }
    for &w in g.in_neighbors(v) {
        let d = g.in_degree(w);
        if d >= 2 {
            lanes[2] += 1;
        }
        if d >= 8 {
            lanes[3] += 1;
        }
    }
    let mut sig = 0u64;
    for (i, &c) in lanes.iter().enumerate() {
        sig |= (c.min(255) as u64) << (8 * i);
    }
    sig
}

/// Byte-wise dominance test: every lane of `data_sig` is ≥ the matching
/// lane of `query_sig`. SWAR-free for clarity; eight byte compares.
#[inline]
pub fn sig_dominates(data_sig: u64, query_sig: u64) -> bool {
    let (mut d, mut q) = (data_sig, query_sig);
    for _ in 0..8 {
        if (d & 0xFF) < (q & 0xFF) {
            return false;
        }
        d >>= 8;
        q >>= 8;
    }
    true
}

/// Masks a query-side signature down to the lanes that are sound to
/// require: label lanes participate only when *both* graphs are
/// labelled (an unlabelled side is a wildcard, so label counts carry no
/// constraint).
#[inline]
pub fn required_signature(query_sig: u64, query_labeled: bool, data_labeled: bool) -> u64 {
    if query_labeled && data_labeled {
        query_sig
    } else {
        query_sig & !SIG_LABEL_MASK
    }
}

/// Degree-bucket statistics of one adjacency direction, summarised as
/// deciles of the sorted degree array (plus mean). Deciles are all the
/// plan-time policy needs: it reasons about "the short list among χ
/// draws" and "a typical list", not exact histograms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeBucketStats {
    /// `deciles[i]` is the i·10-th percentile degree; `deciles[0]` is
    /// the minimum and `deciles[10]` the maximum.
    pub deciles: [u32; 11],
    /// Mean degree.
    pub avg: f64,
}

impl DegreeBucketStats {
    fn from_degrees(mut degs: Vec<u32>) -> Self {
        if degs.is_empty() {
            return DegreeBucketStats {
                deciles: [0; 11],
                avg: 0.0,
            };
        }
        degs.sort_unstable();
        let n = degs.len();
        let mut deciles = [0u32; 11];
        for (i, d) in deciles.iter_mut().enumerate() {
            let idx = (i * (n - 1)).div_ceil(10);
            *d = degs[idx.min(n - 1)];
        }
        let avg = degs.iter().map(|&d| d as u64).sum::<u64>() as f64 / n as f64;
        DegreeBucketStats { deciles, avg }
    }

    /// Nearest-decile percentile lookup, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u32 {
        let i = (p / 10.0).round().clamp(0.0, 10.0) as usize;
        self.deciles[i]
    }

    /// Median degree.
    #[inline]
    pub fn p50(&self) -> u32 {
        self.deciles[5]
    }

    /// 90th-percentile degree.
    #[inline]
    pub fn p90(&self) -> u32 {
        self.deciles[9]
    }

    /// Maximum degree.
    #[inline]
    pub fn max(&self) -> u32 {
        self.deciles[10]
    }
}

/// The cached per-graph profile: degree statistics for both adjacency
/// directions and one packed signature per vertex.
#[derive(Debug, Clone, PartialEq)]
pub struct DataProfile {
    /// Out-degree statistics (constraint lists are adjacency slices, so
    /// these are the list-length distribution the policy prices).
    pub out_degrees: DegreeBucketStats,
    /// In-degree statistics.
    pub in_degrees: DegreeBucketStats,
    /// `signatures[v]` is [`vertex_signature`] of `v`.
    pub signatures: Vec<u64>,
    /// Number of vertices (bitmap-span upper bound at plan time).
    pub vertices: usize,
    /// Whether the profiled graph carries labels.
    pub labeled: bool,
}

impl DataProfile {
    /// Runs the profiling pass over `g`. O(V + E).
    pub fn build(g: &Graph) -> DataProfile {
        PROFILE_BUILDS.fetch_add(1, Ordering::Relaxed);
        let n = g.num_vertices();
        let out: Vec<u32> = (0..n as VertexId).map(|v| g.out_degree(v)).collect();
        let inn: Vec<u32> = (0..n as VertexId).map(|v| g.in_degree(v)).collect();
        let signatures = (0..n as VertexId).map(|v| vertex_signature(g, v)).collect();
        DataProfile {
            out_degrees: DegreeBucketStats::from_degrees(out),
            in_degrees: DegreeBucketStats::from_degrees(inn),
            signatures,
            vertices: n,
            labeled: g.is_labeled(),
        }
    }

    /// Arc-wrapped build, the form [`Graph::profile`] caches.
    pub fn build_arc(g: &Graph) -> Arc<DataProfile> {
        Arc::new(DataProfile::build(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{chain, clique, star};

    #[test]
    fn dominance_is_per_byte() {
        assert!(sig_dominates(0x0303, 0x0203));
        assert!(!sig_dominates(0x0103, 0x0203));
        // High-lane deficit must not be hidden by low-lane surplus.
        assert!(!sig_dominates(0x00FF, 0x0100));
        assert!(sig_dominates(u64::MAX, u64::MAX));
        assert!(sig_dominates(0, 0));
    }

    #[test]
    fn signature_counts_degree_lanes() {
        // Star centre: 4 spokes, each of degree 1 → no lane-0 hits.
        let g = star(5);
        let sig_centre = vertex_signature(&g, 0);
        assert_eq!(sig_centre & 0xFF, 0);
        // Spoke: one neighbour (the centre) of degree 4 → lane 0 = 1.
        let sig_spoke = vertex_signature(&g, 1);
        assert_eq!(sig_spoke & 0xFF, 1);
        // Symmetric graph: in-lanes mirror out-lanes.
        assert_eq!((sig_spoke >> 16) & 0xFF, 1);
    }

    #[test]
    fn signature_saturates() {
        // Star with 600 spokes: centre degree 600 ≥ 8, every spoke sees
        // it in lanes 0–3; the centre's lanes stay 0 but each spoke's
        // count of high-degree neighbours is 1. Build a clique instead
        // to hit saturation: K20 gives 19 qualifying neighbours; use a
        // synthetic heavy case via labels.
        let n = 300;
        let edges: Vec<_> = (1..n as VertexId).map(|v| (0, v)).collect();
        let g = Graph::undirected(n, &edges).with_labels(vec![0; n]);
        // Centre has 299 out-neighbours all labelled 0: lane 4 saturates.
        let sig = vertex_signature(&g, 0);
        assert_eq!((sig >> 32) & 0xFF, 255);
    }

    #[test]
    fn embedding_signature_dominance_holds() {
        // Chain(3) embeds into clique(4): every clique vertex must
        // dominate every chain vertex's signature (necessary condition).
        let q = chain(3);
        let d = clique(4);
        for qv in 0..3 {
            let qs = required_signature(vertex_signature(&q, qv), q.is_labeled(), d.is_labeled());
            for dv in 0..4 {
                assert!(
                    sig_dominates(vertex_signature(&d, dv), qs),
                    "clique vertex {dv} must dominate chain vertex {qv}"
                );
            }
        }
    }

    #[test]
    fn label_lanes_masked_unless_both_labeled() {
        let q = clique(3).with_labels(vec![1, 1, 1]);
        let qs = vertex_signature(&q, 0);
        assert_ne!(qs & SIG_LABEL_MASK, 0);
        // Unlabelled data graph: label lanes must not constrain.
        assert_eq!(required_signature(qs, true, false) & SIG_LABEL_MASK, 0);
        assert_eq!(required_signature(qs, true, true), qs);
    }

    #[test]
    fn decile_stats_of_star() {
        let g = star(11);
        let p = DataProfile::build(&g);
        // Ten spokes of degree 1, one centre of degree 10.
        assert_eq!(p.out_degrees.p50(), 1);
        assert_eq!(p.out_degrees.max(), 10);
        assert!((p.out_degrees.avg - 20.0 / 11.0).abs() < 1e-12);
        assert_eq!(p.vertices, 11);
        assert!(!p.labeled);
    }

    #[test]
    fn empty_graph_profile() {
        let g = Graph::directed(0, &[]);
        let p = DataProfile::build(&g);
        assert_eq!(p.out_degrees.max(), 0);
        assert_eq!(p.signatures.len(), 0);
    }

    #[test]
    fn profile_cache_resets_on_relabel() {
        let g = clique(4);
        let before = g.profile();
        assert!(!before.labeled);
        let g = g.with_labels(vec![0, 1, 2, 3]);
        let after = g.profile();
        assert!(after.labeled);
        assert_ne!(before.signatures, after.signatures);
    }
}
