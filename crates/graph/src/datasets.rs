//! The six evaluation datasets of Table 2 and their synthetic stand-ins.
//!
//! The paper evaluates on SNAP graphs we cannot redistribute here, so each
//! dataset maps to a generator that reproduces the property that drives the
//! experiment: degree skew for the social/communication graphs (candidate
//! explosion), near-regular low-degree lattices for the road networks
//! (deep tries, high compression). If a real SNAP edge-list file is
//! available, load it with [`crate::edgelist::load_undirected`] instead —
//! the engines are agnostic to provenance.
//!
//! Every generator is deterministic, and the [`Scale`] knob shrinks vertex
//! and edge counts proportionally so tests, examples, and benchmarks can
//! pick their own compute budget.

use crate::generators::{chung_lu, road_network};
use crate::graph::Graph;

/// One of the paper's six data graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// enron — email connection graph. 36,692 vertices / 367,662 arcs.
    Enron,
    /// gowalla — location-based social network. 196,591 / 1,900,655.
    Gowalla,
    /// roadNet-PA — Pennsylvania road network. 1,088,092 / 1,541,898.
    RoadNetPA,
    /// roadNet-TX — Texas road network. 1,379,917 / 1,921,660.
    RoadNetTX,
    /// roadNet-CA — California road network. 1,965,206 / 2,766,607.
    RoadNetCA,
    /// wikiTalk — Wikipedia communication network. 2,394,385 / 5,021,410.
    WikiTalk,
}

/// Proportional down-scaling of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// ~1/256 of paper size (fast unit tests).
    Tiny,
    /// ~1/64 of paper size (integration tests, quick benches).
    Small,
    /// ~1/16 of paper size (benchmark default).
    Medium,
    /// Full Table 2 size.
    Paper,
    /// Custom multiplier in (0, 1].
    Custom(f64),
}

impl Scale {
    /// Scaling factor applied to vertex and edge counts.
    pub fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 1.0 / 256.0,
            Scale::Small => 1.0 / 64.0,
            Scale::Medium => 1.0 / 16.0,
            Scale::Paper => 1.0,
            Scale::Custom(f) => {
                assert!(f > 0.0 && f <= 1.0, "custom scale must be in (0, 1]");
                f
            }
        }
    }
}

impl Dataset {
    /// All six datasets in Table 2 order.
    pub const ALL: [Dataset; 6] = [
        Dataset::Enron,
        Dataset::Gowalla,
        Dataset::RoadNetPA,
        Dataset::RoadNetTX,
        Dataset::RoadNetCA,
        Dataset::WikiTalk,
    ];

    /// The three "big" graphs used in the distributed evaluation (§6.3):
    /// enron, gowalla, wikiTalk.
    pub const BIG: [Dataset; 3] = [Dataset::Enron, Dataset::Gowalla, Dataset::WikiTalk];

    /// SNAP name as printed in Table 2.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Enron => "enron",
            Dataset::Gowalla => "gowalla",
            Dataset::RoadNetPA => "roadNet-PA",
            Dataset::RoadNetTX => "roadNet-TX",
            Dataset::RoadNetCA => "roadNet-CA",
            Dataset::WikiTalk => "wikiTalk",
        }
    }

    /// Vertex count from Table 2.
    pub fn paper_vertices(self) -> usize {
        match self {
            Dataset::Enron => 36_692,
            Dataset::Gowalla => 196_591,
            Dataset::RoadNetPA => 1_088_092,
            Dataset::RoadNetTX => 1_379_917,
            Dataset::RoadNetCA => 1_965_206,
            Dataset::WikiTalk => 2_394_385,
        }
    }

    /// Edge count from Table 2 (stored arcs after symmetrisation).
    pub fn paper_edges(self) -> usize {
        match self {
            Dataset::Enron => 367_662,
            Dataset::Gowalla => 1_900_655,
            Dataset::RoadNetPA => 1_541_898,
            Dataset::RoadNetTX => 1_921_660,
            Dataset::RoadNetCA => 2_766_607,
            Dataset::WikiTalk => 5_021_410,
        }
    }

    /// Whether this graph is heavy-tailed (social/communication) rather
    /// than near-regular (road).
    pub fn is_skewed(self) -> bool {
        matches!(self, Dataset::Enron | Dataset::Gowalla | Dataset::WikiTalk)
    }

    /// Power-law exponent used by the Chung-Lu stand-in (fit to the SNAP
    /// degree distributions: enron/wikiTalk are the most skewed).
    fn beta(self) -> f64 {
        match self {
            Dataset::Enron => 2.0,
            Dataset::Gowalla => 2.65,
            Dataset::WikiTalk => 1.9,
            _ => unreachable!("road networks use the lattice generator"),
        }
    }

    /// Generates the synthetic stand-in at the given scale. Deterministic.
    pub fn generate(self, scale: Scale) -> Graph {
        let f = scale.factor();
        let n = ((self.paper_vertices() as f64 * f) as usize).max(256);
        let m_und = ((self.paper_edges() as f64 * f / 2.0) as usize).max(256);
        let seed = 0xC075 ^ (self as u64);
        if self.is_skewed() {
            chung_lu(n, m_und, self.beta(), seed)
        } else {
            // Tune drop so that kept-grid-edges/vertex ≈ target. A full grid
            // has ~2 edges per vertex.
            let target_per_vertex = m_und as f64 / n as f64;
            let keep = (target_per_vertex / 2.0).min(1.0);
            road_network(n, 1.0 - keep, 0.02, seed)
        }
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::stats;

    #[test]
    fn tiny_standins_have_sane_sizes() {
        for ds in Dataset::ALL {
            let g = ds.generate(Scale::Tiny);
            assert!(g.num_vertices() >= 128, "{ds}: {}", g.num_vertices());
            assert!(g.num_edges() > 0);
        }
    }

    #[test]
    fn skewed_vs_regular_shape() {
        let enron = Dataset::Enron.generate(Scale::Tiny);
        let road = Dataset::RoadNetPA.generate(Scale::Tiny);
        let se = stats(&enron);
        let sr = stats(&road);
        assert!(
            se.max_out_degree as f64 > 5.0 * se.avg_out_degree,
            "enron stand-in should be skewed: {se:?}"
        );
        assert!(sr.max_out_degree <= 5, "road stand-in near-regular: {sr:?}");
    }

    #[test]
    fn deterministic_generation() {
        let a = Dataset::Gowalla.generate(Scale::Tiny);
        let b = Dataset::Gowalla.generate(Scale::Tiny);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn scale_orders_sizes() {
        let t = Dataset::Enron.generate(Scale::Tiny);
        let s = Dataset::Enron.generate(Scale::Small);
        assert!(s.num_vertices() > t.num_vertices());
        assert!(s.num_edges() > t.num_edges());
    }

    #[test]
    fn table2_constants() {
        assert_eq!(Dataset::WikiTalk.paper_vertices(), 2_394_385);
        assert_eq!(Dataset::Enron.paper_edges(), 367_662);
        assert_eq!(Dataset::ALL.len(), 6);
    }
}
