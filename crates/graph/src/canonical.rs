//! Exact canonical forms for small graphs (≤ 8 vertices).
//!
//! The paper's query sets are built from *all possible* 5/6/7-vertex graphs;
//! enumerating those requires deduplicating up to isomorphism. For n ≤ 8 a
//! brute-force minimum over all n! adjacency-matrix relabellings is exact
//! and fast enough (8! = 40320), so we use that rather than a heuristic.

use crate::graph::{Graph, VertexId};

/// Maximum vertex count supported by the bit-matrix representation.
pub const MAX_SMALL: usize = 8;

/// Packs an undirected graph into an adjacency bit matrix: bit `u * n + v`
/// set iff the arc `(u, v)` exists. Symmetric for undirected graphs.
pub fn adjacency_bits(g: &Graph) -> u64 {
    let n = g.num_vertices();
    assert!(
        n <= MAX_SMALL,
        "graph too large for small-graph canonicalisation"
    );
    let mut bits = 0u64;
    for (u, v) in g.edges() {
        bits |= 1u64 << (u as usize * n + v as usize);
    }
    bits
}

/// Applies a relabelling `perm` (new id of old vertex `i` is `perm[i]`) to a
/// bit matrix.
fn permute_bits(n: usize, bits: u64, perm: &[usize]) -> u64 {
    let mut out = 0u64;
    for u in 0..n {
        for v in 0..n {
            if bits & (1u64 << (u * n + v)) != 0 {
                out |= 1u64 << (perm[u] * n + perm[v]);
            }
        }
    }
    out
}

/// Canonical form: the lexicographically-minimal bit matrix over all
/// relabellings. Two graphs on `n` vertices are isomorphic iff their
/// canonical forms are equal.
pub fn canonical_form(n: usize, bits: u64) -> u64 {
    assert!(n <= MAX_SMALL);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best = permute_bits(n, bits, &perm);
    // Heap's algorithm over all permutations.
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            let cand = permute_bits(n, bits, &perm);
            if cand < best {
                best = cand;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    best
}

/// Canonical form of a graph directly.
pub fn canonicalize(g: &Graph) -> u64 {
    canonical_form(g.num_vertices(), adjacency_bits(g))
}

/// Exact isomorphism test for graphs with ≤ 8 vertices.
pub fn are_isomorphic(a: &Graph, b: &Graph) -> bool {
    if a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges() {
        return false;
    }
    canonicalize(a) == canonicalize(b)
}

/// Number of automorphisms of a small graph (relabellings fixing the
/// adjacency matrix). Useful for relating embedding counts to
/// subgraph-occurrence counts in tests.
pub fn automorphism_count(g: &Graph) -> u64 {
    let n = g.num_vertices();
    assert!(n <= MAX_SMALL);
    let bits = adjacency_bits(g);
    let mut perm: Vec<usize> = (0..n).collect();
    let mut count = 0u64;
    if permute_bits(n, bits, &perm) == bits {
        count += 1;
    }
    let mut c = vec![0usize; n];
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                perm.swap(0, i);
            } else {
                perm.swap(c[i], i);
            }
            if permute_bits(n, bits, &perm) == bits {
                count += 1;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    count
}

/// Backtracking isomorphism test with degree pruning — much faster than
/// the exhaustive canonical form for sparse small graphs (used by the
/// query-set enumeration, which deduplicates thousands of candidates).
/// Exact for any sizes, but intended for small graphs.
pub fn isomorphic_backtrack(a: &Graph, b: &Graph) -> bool {
    let n = a.num_vertices();
    if n != b.num_vertices() || a.num_edges() != b.num_edges() {
        return false;
    }
    // Degree-multiset invariant.
    let key = |g: &Graph, v: VertexId| (g.out_degree(v), g.in_degree(v));
    let mut da: Vec<_> = (0..n as VertexId).map(|v| key(a, v)).collect();
    let mut db: Vec<_> = (0..n as VertexId).map(|v| key(b, v)).collect();
    da.sort_unstable();
    db.sort_unstable();
    if da != db {
        return false;
    }
    // Map vertices of `a` in descending-degree order (most constrained
    // first) to same-degree vertices of `b`.
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| std::cmp::Reverse(key(a, v)));
    let mut map = vec![u32::MAX; n];
    let mut used = vec![false; n];
    fn rec(
        a: &Graph,
        b: &Graph,
        order: &[VertexId],
        pos: usize,
        map: &mut Vec<u32>,
        used: &mut Vec<bool>,
    ) -> bool {
        if pos == order.len() {
            return true;
        }
        let u = order[pos];
        for w in 0..b.num_vertices() as VertexId {
            if used[w as usize]
                || b.out_degree(w) != a.out_degree(u)
                || b.in_degree(w) != a.in_degree(u)
            {
                continue;
            }
            // Consistency with already-mapped vertices.
            let ok = order[..pos].iter().all(|&p| {
                let mp = map[p as usize];
                a.has_edge(u, p) == b.has_edge(w, mp) && a.has_edge(p, u) == b.has_edge(mp, w)
            });
            if !ok {
                continue;
            }
            map[u as usize] = w;
            used[w as usize] = true;
            if rec(a, b, order, pos + 1, map, used) {
                return true;
            }
            used[w as usize] = false;
            map[u as usize] = u32::MAX;
        }
        false
    }
    rec(a, b, &order, 0, &mut map, &mut used)
}

/// Rebuilds a graph from a bit matrix (inverse of [`adjacency_bits`]).
pub fn graph_from_bits(n: usize, bits: u64) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if bits & (1u64 << (u * n + v)) != 0 {
                edges.push((u as VertexId, v as VertexId));
            }
        }
    }
    Graph::directed(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{chain, clique, cycle, star};

    #[test]
    fn isomorphic_relabellings_detected() {
        // Path 0-1-2 vs path 2-0-1.
        let a = Graph::undirected(3, &[(0, 1), (1, 2)]);
        let b = Graph::undirected(3, &[(2, 0), (0, 1)]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn non_isomorphic_same_counts() {
        // Both 4 vertices, 3 edges: path vs star.
        let p = chain(4);
        let s = star(4);
        assert_eq!(p.num_edges(), s.num_edges());
        assert!(!are_isomorphic(&p, &s));
    }

    #[test]
    fn clique_automorphisms() {
        assert_eq!(automorphism_count(&clique(4)), 24);
        assert_eq!(automorphism_count(&cycle(5)), 10); // dihedral D5
        assert_eq!(automorphism_count(&chain(3)), 2);
    }

    #[test]
    fn bits_roundtrip() {
        let g = cycle(5);
        let bits = adjacency_bits(&g);
        let g2 = graph_from_bits(5, bits);
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!(are_isomorphic(&g, &g2));
    }

    #[test]
    fn backtrack_agrees_with_canonical() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..200 {
            let n = rng.random_range(3..7usize);
            let m = rng.random_range(0..n * 2);
            let mk = |rng: &mut SmallRng| -> Graph {
                let edges: Vec<_> = (0..m)
                    .map(|_| {
                        (
                            rng.random_range(0..n) as VertexId,
                            rng.random_range(0..n) as VertexId,
                        )
                    })
                    .collect();
                Graph::undirected(n, &edges)
            };
            let a = mk(&mut rng);
            let b = mk(&mut rng);
            assert_eq!(
                isomorphic_backtrack(&a, &b),
                are_isomorphic(&a, &b),
                "disagreement on n={n} m={m}"
            );
            // Reflexivity under relabelling.
            assert!(isomorphic_backtrack(&a, &a));
        }
    }

    #[test]
    fn directed_asymmetry_respected() {
        let a = Graph::directed(2, &[(0, 1)]);
        let b = Graph::directed(2, &[(1, 0)]);
        // Isomorphic as directed graphs (relabel swaps them).
        assert!(are_isomorphic(&a, &b));
        let c = Graph::directed(3, &[(0, 1), (0, 2)]);
        let d = Graph::directed(3, &[(0, 1), (2, 0)]);
        assert!(!are_isomorphic(&c, &d));
    }
}
