//! Streaming edge updates: validated insert/delete batches over the CSR.
//!
//! A live graph takes mutations as [`EdgeBatch`]es —
//! [`Graph::apply_batch`] validates the whole batch up front (every edge
//! named exists or is genuinely new, no self-loops, no duplicates),
//! rebuilds the affected CSR rows with a sorted merge, and returns a
//! [`GraphDelta`] naming exactly the arcs that changed and the vertices
//! they touch. The delta is what the incremental matcher in `cuts-core`
//! consumes to decide which trie subtrees are dirty.
//!
//! Every successful application bumps the graph's mutation
//! [`Graph::version`] and invalidates both the cached [`DataProfile`]
//! (degree/signature statistics are stale the moment an edge moves) and
//! the content [`Graph::fingerprint`] — so cached plans, snapshots, and
//! result tries keyed on the old state can never be silently reused.
//!
//! [`DataProfile`]: crate::profile::DataProfile

use std::collections::BTreeSet;
use std::sync::OnceLock;

use crate::csr::Csr;
use crate::graph::{Graph, VertexId};

/// A validated-on-application batch of edge insertions and deletions.
///
/// For symmetric (undirected) graphs each entry names the logical edge
/// `{u, v}` in either orientation; [`Graph::apply_batch`] stores and
/// removes both arcs. For directed graphs entries are arcs as given.
#[derive(Debug, Clone, Default)]
pub struct EdgeBatch {
    inserts: Vec<(VertexId, VertexId)>,
    deletes: Vec<(VertexId, VertexId)>,
}

impl EdgeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        EdgeBatch::default()
    }

    /// Queues an edge insertion.
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.inserts.push((u, v));
        self
    }

    /// Queues an edge deletion.
    pub fn delete(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.deletes.push((u, v));
        self
    }

    /// Queued insertions, as given.
    pub fn inserts(&self) -> &[(VertexId, VertexId)] {
        &self.inserts
    }

    /// Queued deletions, as given.
    pub fn deletes(&self) -> &[(VertexId, VertexId)] {
        &self.deletes
    }

    /// Total queued operations.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Builds a batch that exactly undoes this one (deletes what it
    /// inserted, re-inserts what it deleted). Applying a batch and then
    /// its inverse restores the original adjacency byte-for-byte — but
    /// not the original fingerprint, which tracks the mutation count.
    pub fn inverse(&self) -> EdgeBatch {
        EdgeBatch {
            inserts: self.deletes.clone(),
            deletes: self.inserts.clone(),
        }
    }
}

/// Why a batch was rejected. Validation is all-or-nothing: a rejected
/// batch leaves the graph untouched (same version, same fingerprint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// An edge names a vertex outside `0..num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex count.
        vertices: usize,
    },
    /// An edge connects a vertex to itself (never canonical here; the
    /// edge-list constructors drop loops on ingestion).
    SelfLoop {
        /// The looping vertex.
        vertex: VertexId,
    },
    /// The same logical edge appears twice in the batch (in either list,
    /// or once in each).
    DuplicateInBatch {
        /// Edge source (canonical orientation for symmetric graphs).
        u: VertexId,
        /// Edge target.
        v: VertexId,
    },
    /// An insertion names an edge the graph already has.
    AlreadyPresent {
        /// Edge source.
        u: VertexId,
        /// Edge target.
        v: VertexId,
    },
    /// A deletion names an edge the graph does not have.
    NotPresent {
        /// Edge source.
        u: VertexId,
        /// Edge target.
        v: VertexId,
    },
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::VertexOutOfRange { vertex, vertices } => {
                write!(f, "vertex {vertex} out of range (graph has {vertices})")
            }
            BatchError::SelfLoop { vertex } => write!(f, "self-loop on vertex {vertex}"),
            BatchError::DuplicateInBatch { u, v } => {
                write!(f, "edge ({u}, {v}) appears more than once in the batch")
            }
            BatchError::AlreadyPresent { u, v } => {
                write!(f, "insert of edge ({u}, {v}) which is already present")
            }
            BatchError::NotPresent { u, v } => {
                write!(f, "delete of edge ({u}, {v}) which is not present")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// What one applied batch changed: the stored arcs that were added and
/// removed (both orientations for symmetric graphs), the set of vertices
/// incident to any change, and the graph's new mutation version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDelta {
    /// Arcs added to the out-CSR, sorted.
    pub inserted: Vec<(VertexId, VertexId)>,
    /// Arcs removed from the out-CSR, sorted.
    pub removed: Vec<(VertexId, VertexId)>,
    /// Endpoints of every changed arc, sorted and deduplicated — the
    /// seed set for dirty-subtree marking.
    pub touched: Vec<VertexId>,
    /// The graph's [`Graph::version`] after this batch.
    pub version: u64,
}

impl GraphDelta {
    /// Total arcs changed.
    pub fn arcs_changed(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }
}

/// Applies sorted arc edits to one CSR: rows named by `adds`/`dels` are
/// re-merged, every other row is copied verbatim. `O(|V| + |E| + |Δ|)`.
fn edit_csr(csr: &Csr, adds: &[(VertexId, VertexId)], dels: &[(VertexId, VertexId)]) -> Csr {
    let n = csr.num_vertices();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut targets = Vec::with_capacity((csr.num_edges() + adds.len()).saturating_sub(dels.len()));
    offsets.push(0u64);
    let (mut ai, mut di) = (0usize, 0usize);
    for u in 0..n as VertexId {
        let row = csr.neighbors(u);
        let row_adds_start = ai;
        while ai < adds.len() && adds[ai].0 == u {
            ai += 1;
        }
        let row_dels_start = di;
        while di < dels.len() && dels[di].0 == u {
            di += 1;
        }
        if row_adds_start == ai && row_dels_start == di {
            targets.extend_from_slice(row);
        } else {
            // Merge the sorted row with its sorted add list, skipping
            // deletions. Validation guarantees adds are absent and dels
            // present, so the merge never sees a conflict.
            let row_adds = &adds[row_adds_start..ai];
            let row_dels = &dels[row_dels_start..di];
            let (mut r, mut a, mut d) = (0usize, 0usize, 0usize);
            while r < row.len() || a < row_adds.len() {
                let next_add = row_adds.get(a).map(|&(_, v)| v);
                match (row.get(r).copied(), next_add) {
                    (Some(t), add) if add.is_none_or(|x| t < x) => {
                        if row_dels.get(d).is_some_and(|&(_, x)| x == t) {
                            d += 1;
                        } else {
                            targets.push(t);
                        }
                        r += 1;
                    }
                    (_, Some(x)) => {
                        targets.push(x);
                        a += 1;
                    }
                    _ => unreachable!("merge cursors exhausted together"),
                }
            }
            debug_assert_eq!(d, row_dels.len(), "unmatched deletion in row {u}");
        }
        offsets.push(targets.len() as u64);
    }
    Csr::from_sorted_parts(offsets, targets).expect("edited CSR keeps every invariant")
}

impl Graph {
    /// Applies a validated batch of edge insertions and deletions,
    /// returning exactly what changed.
    ///
    /// The whole batch is checked before anything is touched — out-of-
    /// range vertices, self-loops, duplicate edges within the batch,
    /// inserts of present edges, and deletes of absent edges all reject
    /// the batch and leave the graph (version, fingerprint, profile)
    /// unchanged. An empty batch is a no-op and does **not** bump the
    /// version.
    ///
    /// On success the mutation [`Graph::version`] increments and both
    /// the cached [`crate::profile::DataProfile`] and the
    /// [`Graph::fingerprint`] are invalidated, so plans or snapshots
    /// keyed against the previous state cannot be reused silently.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> Result<GraphDelta, BatchError> {
        let n = self.num_vertices();
        // Canonical key per logical edge: sorted pair when symmetric
        // (either orientation names the same edge), the arc as given
        // when directed.
        let canon = |u: VertexId, v: VertexId| -> (VertexId, VertexId) {
            if self.symmetric && u > v {
                (v, u)
            } else {
                (u, v)
            }
        };
        let mut seen: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
        let mut check = |u: VertexId, v: VertexId| -> Result<(), BatchError> {
            for w in [u, v] {
                if w as usize >= n {
                    return Err(BatchError::VertexOutOfRange {
                        vertex: w,
                        vertices: n,
                    });
                }
            }
            if u == v {
                return Err(BatchError::SelfLoop { vertex: u });
            }
            let key = canon(u, v);
            if !seen.insert(key) {
                return Err(BatchError::DuplicateInBatch { u: key.0, v: key.1 });
            }
            Ok(())
        };
        for &(u, v) in &batch.inserts {
            check(u, v)?;
            if self.has_edge(u, v) {
                return Err(BatchError::AlreadyPresent { u, v });
            }
        }
        for &(u, v) in &batch.deletes {
            check(u, v)?;
            if !self.has_edge(u, v) {
                return Err(BatchError::NotPresent { u, v });
            }
        }
        if batch.is_empty() {
            return Ok(GraphDelta {
                inserted: Vec::new(),
                removed: Vec::new(),
                touched: Vec::new(),
                version: self.version,
            });
        }

        // Expand logical edges to stored arcs.
        let expand = |edges: &[(VertexId, VertexId)]| -> Vec<(VertexId, VertexId)> {
            let mut arcs = Vec::with_capacity(edges.len() * if self.symmetric { 2 } else { 1 });
            for &(u, v) in edges {
                arcs.push((u, v));
                if self.symmetric {
                    arcs.push((v, u));
                }
            }
            arcs.sort_unstable();
            arcs
        };
        let adds = expand(&batch.inserts);
        let dels = expand(&batch.deletes);

        self.out = edit_csr(&self.out, &adds, &dels);
        self.inn = if self.symmetric {
            self.out.clone()
        } else {
            let reverse = |arcs: &[(VertexId, VertexId)]| {
                let mut r: Vec<_> = arcs.iter().map(|&(u, v)| (v, u)).collect();
                r.sort_unstable();
                r
            };
            edit_csr(&self.inn, &reverse(&adds), &reverse(&dels))
        };

        let mut touched: Vec<VertexId> = adds
            .iter()
            .chain(dels.iter())
            .flat_map(|&(u, v)| [u, v])
            .collect();
        touched.sort_unstable();
        touched.dedup();

        self.version += 1;
        self.profile = OnceLock::new();
        self.fingerprint = OnceLock::new();
        Ok(GraphDelta {
            inserted: adds,
            removed: dels,
            touched,
            version: self.version,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(g: &Graph) -> u64 {
        g.fingerprint()
    }

    #[test]
    fn insert_and_delete_roundtrip_restores_csr() {
        let mut g = Graph::undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let before_out = g.out_csr().clone();
        let f0 = fp(&g);

        let mut batch = EdgeBatch::new();
        batch.insert(0, 2).insert(4, 0).delete(1, 2);
        let delta = g.apply_batch(&batch).unwrap();
        assert_eq!(delta.version, 1);
        assert_eq!(delta.inserted.len(), 4, "two logical edges, both arcs");
        assert_eq!(delta.removed, vec![(1, 2), (2, 1)]);
        assert_eq!(delta.touched, vec![0, 1, 2, 4]);
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert!(!g.has_edge(1, 2));
        let f1 = fp(&g);
        assert_ne!(f0, f1, "first batch must bump the fingerprint");

        let delta = g.apply_batch(&batch.inverse()).unwrap();
        assert_eq!(delta.version, 2);
        assert_eq!(g.out_csr(), &before_out, "inverse restores adjacency");
        assert_eq!(g.in_csr(), &before_out);
        let f2 = fp(&g);
        assert_ne!(f1, f2, "second batch must bump the fingerprint");
        assert_ne!(f0, f2, "restored adjacency is still a new version");
    }

    #[test]
    fn directed_batches_edit_one_direction() {
        let mut g = Graph::directed(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut batch = EdgeBatch::new();
        batch.insert(3, 0).delete(1, 2);
        let delta = g.apply_batch(&batch).unwrap();
        assert_eq!(delta.inserted, vec![(3, 0)]);
        assert!(g.has_edge(3, 0) && !g.has_edge(0, 3));
        assert!(!g.has_edge(1, 2));
        // The in-CSR tracked the edits.
        assert_eq!(g.in_neighbors(0), &[3]);
        assert_eq!(g.in_neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn validation_rejects_and_leaves_graph_untouched() {
        let mut g = Graph::undirected(3, &[(0, 1), (1, 2)]);
        let f0 = fp(&g);
        let snapshot = g.out_csr().clone();
        let mut bad = EdgeBatch::new();
        bad.insert(0, 7);
        assert!(matches!(
            g.apply_batch(&bad),
            Err(BatchError::VertexOutOfRange { vertex: 7, .. })
        ));
        let mut bad = EdgeBatch::new();
        bad.insert(1, 1);
        assert!(matches!(
            g.apply_batch(&bad),
            Err(BatchError::SelfLoop { vertex: 1 })
        ));
        let mut bad = EdgeBatch::new();
        bad.insert(0, 2).insert(2, 0); // same logical edge, both ways
        assert!(matches!(
            g.apply_batch(&bad),
            Err(BatchError::DuplicateInBatch { .. })
        ));
        let mut bad = EdgeBatch::new();
        bad.insert(0, 1);
        assert!(matches!(
            g.apply_batch(&bad),
            Err(BatchError::AlreadyPresent { .. })
        ));
        let mut bad = EdgeBatch::new();
        bad.delete(0, 2);
        assert!(matches!(
            g.apply_batch(&bad),
            Err(BatchError::NotPresent { .. })
        ));
        assert_eq!(g.version(), 0, "rejected batches never mutate");
        assert_eq!(g.out_csr(), &snapshot);
        assert_eq!(fp(&g), f0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut g = Graph::undirected(3, &[(0, 1)]);
        let f0 = fp(&g);
        let delta = g.apply_batch(&EdgeBatch::new()).unwrap();
        assert_eq!(delta.arcs_changed(), 0);
        assert_eq!(g.version(), 0);
        assert_eq!(fp(&g), f0);
    }

    #[test]
    fn profile_invalidated_by_batch() {
        let mut g = Graph::undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let p0 = g.profile();
        let mut batch = EdgeBatch::new();
        batch.insert(0, 3);
        g.apply_batch(&batch).unwrap();
        let p1 = g.profile();
        assert!(
            !std::sync::Arc::ptr_eq(&p0, &p1),
            "stale profile must not survive a mutation"
        );
    }

    #[test]
    fn edited_graph_matches_fresh_construction() {
        // After arbitrary edits, the CSR must be indistinguishable from
        // building the final edge set from scratch.
        let mut g = Graph::undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut batch = EdgeBatch::new();
        batch.insert(0, 5).insert(1, 4).delete(2, 3);
        g.apply_batch(&batch).unwrap();
        let fresh = Graph::undirected(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (0, 5), (1, 4)]);
        assert_eq!(g.out_csr(), fresh.out_csr());
        assert_eq!(g.in_csr(), fresh.in_csr());
    }
}
