//! SNAP edge-list text format: `#`-prefixed comment lines, then one
//! whitespace-separated `src dst` pair per line. This is the format the
//! paper's six datasets ship in; real SNAP downloads can be loaded directly.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Errors from edge-list parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line that is not two integers.
    Malformed {
        /// 1-based line number of the offending line.
        line_no: usize,
        /// The line's (trimmed) text.
        line: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Malformed { line_no, line } => {
                write!(f, "malformed edge at line {line_no}: {line:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parses a SNAP edge list from any reader into a builder.
pub fn parse<R: Read>(reader: R) -> Result<GraphBuilder, ParseError> {
    let mut builder = GraphBuilder::new();
    let buf = BufReader::new(reader);
    let mut line = String::new();
    let mut buf = buf;
    let mut line_no = 0usize;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        line_no += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (a, b) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(ParseError::Malformed {
                    line_no,
                    line: t.to_string(),
                })
            }
        };
        let (u, v) = match (a.parse::<u64>(), b.parse::<u64>()) {
            (Ok(u), Ok(v)) => (u, v),
            _ => {
                return Err(ParseError::Malformed {
                    line_no,
                    line: t.to_string(),
                })
            }
        };
        builder.add_edge(u, v);
    }
    Ok(builder)
}

/// Loads a directed graph from a SNAP file path.
pub fn load_directed<P: AsRef<Path>>(path: P) -> Result<Graph, ParseError> {
    Ok(parse(std::fs::File::open(path)?)?.build_directed())
}

/// Loads an undirected (symmetrised) graph from a SNAP file path.
pub fn load_undirected<P: AsRef<Path>>(path: P) -> Result<Graph, ParseError> {
    Ok(parse(std::fs::File::open(path)?)?.build_undirected())
}

/// Writes a graph as a SNAP edge list (one arc per line).
pub fn write<W: Write>(graph: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# cuts-rs edge list")?;
    writeln!(
        w,
        "# Nodes: {} Edges: {}",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for (u, v) in graph.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_snap_format() {
        let text = "# Directed graph\n# Nodes: 4 Edges: 3\n0\t1\n1 2\n\n3\t0\n";
        let g = parse(text.as_bytes()).unwrap().build_directed();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn rejects_garbage() {
        let text = "0 1\nnot an edge\n";
        match parse(text.as_bytes()) {
            Err(ParseError::Malformed { line_no, .. }) => assert_eq!(line_no, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn write_then_parse_roundtrip() {
        let g = Graph::directed(4, &[(0, 1), (1, 2), (3, 0)]);
        let mut out = Vec::new();
        write(&g, &mut out).unwrap();
        let g2 = parse(out.as_slice()).unwrap().build_directed();
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(g2.num_edges(), 3);
        assert!(g2.has_edge(0, 1) && g2.has_edge(1, 2) && g2.has_edge(3, 0));
    }

    #[test]
    fn percent_comments_skipped() {
        let text = "% konect style\n1 2\n";
        let g = parse(text.as_bytes()).unwrap().build_undirected();
        assert_eq!(g.num_input_edges(), 1);
    }
}
