//! Weakly connected components and the §4 splitting rules.
//!
//! The paper: if the query graph is disconnected, match each component and
//! take the cross product of the solutions; if the data graph is
//! disconnected, match against each component and take the union.

use crate::graph::{Graph, VertexId};

/// Component labelling of a graph.
#[derive(Debug, Clone)]
pub struct Components {
    /// Component id per vertex.
    pub label: Vec<u32>,
    /// Number of components.
    count: u32,
}

impl Components {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.count as usize
    }

    /// Vertices of component `c`.
    pub fn members(&self, c: u32) -> Vec<VertexId> {
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Sizes of all components.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.count as usize];
        for &l in &self.label {
            s[l as usize] += 1;
        }
        s
    }
}

/// Labels weakly connected components (directions ignored) via BFS.
pub fn weakly_connected_components(g: &Graph) -> Components {
    let n = g.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = Vec::new();
    for start in 0..n {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = count;
        queue.push(start as VertexId);
        while let Some(v) = queue.pop() {
            for &w in g.out_neighbors(v).iter().chain(g.in_neighbors(v)) {
                if label[w as usize] == u32::MAX {
                    label[w as usize] = count;
                    queue.push(w);
                }
            }
        }
        count += 1;
    }
    Components { label, count }
}

/// Extracts component `c` as a standalone graph plus the dense→original
/// vertex mapping. Edge directions are preserved.
pub fn extract_component(g: &Graph, comps: &Components, c: u32) -> (Graph, Vec<VertexId>) {
    let members = comps.members(c);
    let mut dense = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in members.iter().enumerate() {
        dense[v as usize] = i as u32;
    }
    let mut edges = Vec::new();
    for &v in &members {
        for &w in g.out_neighbors(v) {
            if comps.label[w as usize] == c {
                edges.push((dense[v as usize], dense[w as usize]));
            }
        }
    }
    // Arcs of a symmetric graph come in both directions already, so a
    // directed build preserves them exactly. Labels follow their vertices.
    let mut sub = Graph::directed(members.len(), &edges);
    if g.is_labeled() {
        let labels = members
            .iter()
            .map(|&v| g.label(v).expect("labeled graph"))
            .collect();
        sub = sub.with_labels(labels);
    }
    (sub, members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = weakly_connected_components(&g);
        assert_eq!(c.num_components(), 1);
    }

    #[test]
    fn two_components_and_isolated() {
        let g = Graph::undirected(5, &[(0, 1), (2, 3)]);
        let c = weakly_connected_components(&g);
        assert_eq!(c.num_components(), 3);
        assert_eq!(c.label[0], c.label[1]);
        assert_eq!(c.label[2], c.label[3]);
        assert_ne!(c.label[0], c.label[2]);
        assert_eq!(c.sizes().iter().sum::<usize>(), 5);
    }

    #[test]
    fn weak_connectivity_ignores_direction() {
        let g = Graph::directed(3, &[(0, 1), (2, 1)]);
        let c = weakly_connected_components(&g);
        assert_eq!(c.num_components(), 1);
    }

    #[test]
    fn extract_preserves_labels() {
        let g = Graph::directed(5, &[(0, 1), (3, 4)]).with_labels(vec![9, 8, 7, 6, 5]);
        let c = weakly_connected_components(&g);
        let comp = c.label[3];
        let (sub, map) = extract_component(&g, &c, comp);
        assert_eq!(map, vec![3, 4]);
        assert_eq!(sub.label(0), Some(6));
        assert_eq!(sub.label(1), Some(5));
    }

    #[test]
    fn extract_preserves_edges() {
        let g = Graph::directed(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = weakly_connected_components(&g);
        let comp_of_3 = c.label[3];
        let (sub, map) = extract_component(&g, &c, comp_of_3);
        assert_eq!(sub.num_vertices(), 2);
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(map, vec![3, 4]);
        assert!(sub.has_edge(0, 1));
    }
}
