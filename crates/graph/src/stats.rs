//! Graph statistics (Table 2 regeneration and diagnostics).

use crate::graph::Graph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Stored arc count (undirected edges count twice).
    pub arcs: usize,
    /// Undirected edge count if symmetric, else arc count.
    pub input_edges: usize,
    /// Maximum out-degree (the paper's δ).
    pub max_out_degree: u32,
    /// Maximum in-degree.
    pub max_in_degree: u32,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Out-degree at the 99th percentile.
    pub p99_out_degree: u32,
}

/// Computes [`GraphStats`].
pub fn stats(g: &Graph) -> GraphStats {
    let n = g.num_vertices();
    let mut degs: Vec<u32> = (0..n as u32).map(|v| g.out_degree(v)).collect();
    degs.sort_unstable();
    let p99 = if n == 0 {
        0
    } else {
        degs[((n - 1) as f64 * 0.99) as usize]
    };
    GraphStats {
        vertices: n,
        arcs: g.num_edges(),
        input_edges: g.num_input_edges(),
        max_out_degree: degs.last().copied().unwrap_or(0),
        max_in_degree: g.max_in_degree(),
        avg_out_degree: g.avg_out_degree(),
        p99_out_degree: p99,
    }
}

/// Out-degree histogram with power-of-two buckets: `hist[i]` counts vertices
/// with degree in `[2^i, 2^(i+1))`; `hist[0]` counts degree 0 and 1.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let mut hist = vec![0usize; 33];
    for v in 0..g.num_vertices() as u32 {
        let d = g.out_degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (31 - d.leading_zeros()) as usize
        };
        hist[bucket] += 1;
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{clique, star};

    #[test]
    fn clique_stats() {
        let s = stats(&clique(5));
        assert_eq!(s.vertices, 5);
        assert_eq!(s.input_edges, 10);
        assert_eq!(s.arcs, 20);
        assert_eq!(s.max_out_degree, 4);
        assert!((s.avg_out_degree - 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let h = degree_histogram(&star(10));
        // 9 leaves at degree 1 (bucket 0), hub at degree 9 (bucket 3).
        assert_eq!(h[0], 9);
        assert_eq!(h[3], 1);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::directed(0, &[]);
        let s = stats(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.max_out_degree, 0);
    }
}
