#![warn(missing_docs)]

//! Graph substrate for the cuTS reproduction.
//!
//! This crate provides everything the matching engine needs from the "graph
//! world" of the paper:
//!
//! * [`Csr`] / [`Graph`] — compressed-sparse-row storage with both out- and
//!   in-adjacency, the representation §4.1.2 of the paper assumes ("Since we
//!   use the CSR data structure to represent the data graph, finding the
//!   neighbors ... can be done with O(1) time cost").
//! * [`GraphBuilder`] — edge-list ingestion with deduplication and
//!   symmetrisation of undirected inputs (Definition 1).
//! * [`batch`] — streaming mutation: validated edge insert/delete batches
//!   ([`EdgeBatch`]) applied in place with profile/fingerprint
//!   invalidation, returning the [`GraphDelta`] the incremental matcher
//!   consumes.
//! * [`edgelist`] — the SNAP text format the paper's datasets ship in.
//! * [`generators`] — synthetic graph families, including degree-skewed
//!   stand-ins for the six SNAP datasets of Table 2 (see [`datasets`]).
//! * [`query_gen`] — exact enumeration of the paper's query sets: all
//!   non-isomorphic connected graphs on 5/6/7 vertices, top-11 by edge count.
//! * [`components`] — weakly-connected-component splitting used by §4 for
//!   disconnected query or data graphs.
//! * [`canonical`] — brute-force canonical forms for small graphs (exact for
//!   the ≤7-vertex query graphs), used for dedup and testing.

pub mod batch;
pub mod builder;
pub mod canonical;
pub mod components;
pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod generators;
pub mod graph;
pub mod labels;
pub mod profile;
pub mod query_gen;
pub mod stats;

pub use batch::{BatchError, EdgeBatch, GraphDelta};
pub use builder::GraphBuilder;
pub use csr::Csr;
pub use datasets::{Dataset, Scale};
pub use graph::{Graph, VertexId};
pub use profile::DataProfile;
pub use query_gen::{query_set, QueryGraph};
