//! The directed graph type used throughout cuTS.

use std::sync::{Arc, OnceLock};

use crate::csr::Csr;
use crate::profile::DataProfile;

/// Vertex identifier. 32 bits suffices for every dataset in the paper
/// (largest is wikiTalk at 2.4M vertices) and halves the trie footprint
/// relative to `usize`, which matters because intermediate storage is the
/// whole point of the paper.
pub type VertexId = u32;

/// A directed graph with both out- and in-adjacency in CSR form.
///
/// Undirected inputs are symmetrised per Definition 1 of the paper: every
/// undirected edge `{u, v}` is stored as both `(u, v)` and `(v, u)`.
#[derive(Clone, Debug)]
pub struct Graph {
    pub(crate) out: Csr,
    pub(crate) inn: Csr,
    /// True if the graph was built from an undirected edge list (so `out`
    /// and `inn` are identical by construction).
    pub(crate) symmetric: bool,
    /// Optional vertex labels (the "meta information" §4.1.1 sets aside;
    /// provided as an extension because the labelled setting is where
    /// comparators like GSI live). `None` = unlabelled.
    pub(crate) labels: Option<Box<[u32]>>,
    /// Lazily computed statistics/signature profile (see
    /// [`crate::profile`]); shared by clones until the graph changes.
    pub(crate) profile: OnceLock<Arc<DataProfile>>,
    /// Monotone mutation counter: 0 for a freshly constructed graph,
    /// bumped by every [`Graph::apply_batch`]. Part of the
    /// [`Graph::fingerprint`], so artifacts captured against an earlier
    /// state of this graph can be rejected even if a later batch happens
    /// to restore the original adjacency byte-for-byte.
    pub(crate) version: u64,
    /// Lazily computed content+version fingerprint; invalidated together
    /// with the profile on every mutation.
    pub(crate) fingerprint: OnceLock<u64>,
}

impl Graph {
    /// Builds a directed graph from an edge list. Self-loops are removed,
    /// parallel edges collapsed.
    pub fn directed(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let filtered: Vec<_> = edges.iter().copied().filter(|&(u, v)| u != v).collect();
        let out = Csr::from_edges(n, &filtered);
        let inn = out.transpose();
        Graph {
            out,
            inn,
            symmetric: false,
            labels: None,
            profile: OnceLock::new(),
            version: 0,
            fingerprint: OnceLock::new(),
        }
    }

    /// Builds an undirected graph (symmetrised per Definition 1).
    pub fn undirected(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut sym = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u != v {
                sym.push((u, v));
                sym.push((v, u));
            }
        }
        let out = Csr::from_edges(n, &sym);
        let inn = out.clone();
        Graph {
            out,
            inn,
            symmetric: true,
            labels: None,
            profile: OnceLock::new(),
            version: 0,
            fingerprint: OnceLock::new(),
        }
    }

    /// Builds a graph directly from its out-adjacency CSR, the zero-copy
    /// ingestion path for validated wire input: no edge-list detour, no
    /// sorting — one `O(|V| + |E|)` transpose is the only derived work.
    /// Self-loops are rejected (the edge-list constructors silently drop
    /// them, so a loop here means the input was never canonical). For
    /// `symmetric` graphs the CSR must equal its own transpose.
    pub fn from_out_csr(out: Csr, symmetric: bool) -> Result<Self, &'static str> {
        let n = out.num_vertices();
        let inn = if symmetric {
            // Fused symmetry + self-loop sweep: every arc `(u, v)` must be
            // matched by `(v, u)`. Arcs are visited in `(u, v)` order, so
            // within each row `v` the sources `u` arrive ascending and a
            // monotone cursor per row pairs them off; the arc count equals
            // the slot count, so E successful pairings fill every row
            // exactly. One pass, no transpose materialised.
            let offsets = out.offsets();
            let targets = out.targets();
            let mut cursor: Vec<u64> = offsets[..n].to_vec();
            for u in 0..n {
                for &v in out.neighbors(u as VertexId) {
                    if v as usize == u {
                        return Err("self-loop in adjacency");
                    }
                    let c = &mut cursor[v as usize];
                    if *c >= offsets[v as usize + 1] || targets[*c as usize] != u as VertexId {
                        return Err("adjacency is not symmetric");
                    }
                    *c += 1;
                }
            }
            out.clone()
        } else {
            for u in 0..n as VertexId {
                if out.neighbors(u).binary_search(&u).is_ok() {
                    return Err("self-loop in adjacency");
                }
            }
            out.transpose()
        };
        Ok(Graph {
            out,
            inn,
            symmetric,
            labels: None,
            profile: OnceLock::new(),
            version: 0,
            fingerprint: OnceLock::new(),
        })
    }

    /// Attaches vertex labels (one per vertex).
    pub fn with_labels(mut self, labels: Vec<u32>) -> Self {
        assert_eq!(
            labels.len(),
            self.num_vertices(),
            "one label per vertex required"
        );
        self.labels = Some(labels.into_boxed_slice());
        // Labels feed the signature lanes; a cached profile (and the
        // content fingerprint, which covers labels) is stale now.
        self.profile = OnceLock::new();
        self.fingerprint = OnceLock::new();
        self
    }

    /// The graph's [`DataProfile`], computed on first use and cached
    /// (clones made after the first call share the same profile).
    pub fn profile(&self) -> Arc<DataProfile> {
        self.profile
            .get_or_init(|| DataProfile::build_arc(self))
            .clone()
    }

    /// Installs an already-computed profile into the cache, so later
    /// [`Graph::profile`] calls return it without a profiling pass.
    /// The warm-start path uses this to hand a snapshot-decoded profile
    /// to the engine with zero re-profiling.
    ///
    /// # Panics
    ///
    /// If the profile does not describe a graph of this vertex count or
    /// labelling — callers must validate decoded profiles first.
    pub fn with_cached_profile(mut self, profile: Arc<DataProfile>) -> Self {
        assert_eq!(
            profile.vertices,
            self.num_vertices(),
            "profile vertex count must match the graph"
        );
        assert_eq!(
            profile.labeled,
            self.is_labeled(),
            "profile labelling must match the graph"
        );
        self.profile = OnceLock::new();
        let _ = self.profile.set(profile);
        self
    }

    /// Vertex label, if the graph is labelled.
    #[inline]
    pub fn label(&self, v: VertexId) -> Option<u32> {
        self.labels.as_ref().map(|l| l[v as usize])
    }

    /// True when the graph carries vertex labels.
    #[inline]
    pub fn is_labeled(&self) -> bool {
        self.labels.is_some()
    }

    /// Label-compatibility test for matching `q` (a vertex of `query`)
    /// onto `d` (a vertex of `self`): labels constrain the match only
    /// when both graphs are labelled; an unlabelled side is a wildcard.
    #[inline]
    pub fn label_compatible(&self, d: VertexId, query: &Graph, q: VertexId) -> bool {
        match (self.label(d), query.label(q)) {
            (Some(ld), Some(lq)) => ld == lq,
            _ => true,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    /// Number of stored directed edges (an undirected edge counts twice).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out.num_edges()
    }

    /// Number of undirected edges if symmetric, otherwise directed count.
    #[inline]
    pub fn num_input_edges(&self) -> usize {
        if self.symmetric {
            self.out.num_edges() / 2
        } else {
            self.out.num_edges()
        }
    }

    /// Whether this graph was symmetrised from an undirected input.
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// Sorted out-neighbours of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.out.neighbors(v)
    }

    /// Sorted in-neighbours of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.inn.neighbors(v)
    }

    /// Out-degree.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.out.degree(v)
    }

    /// In-degree.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> u32 {
        self.inn.degree(v)
    }

    /// Directed edge test `(u, v) ∈ E`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out.has_edge(u, v)
    }

    /// The degree filter of Definition 5 extended to directed graphs: `d`
    /// can host `q` only if it dominates both in- and out-degree.
    #[inline]
    pub fn degree_dominates(&self, d: VertexId, q_out: u32, q_in: u32) -> bool {
        self.out_degree(d) >= q_out && self.in_degree(d) >= q_in
    }

    /// Maximum out-degree over all vertices (the paper's δ).
    pub fn max_out_degree(&self) -> u32 {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.out_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Maximum in-degree over all vertices.
    pub fn max_in_degree(&self) -> u32 {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.in_degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average out-degree, used to size virtual warps (§4.1.2).
    pub fn avg_out_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Underlying out-CSR.
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// Underlying in-CSR.
    #[inline]
    pub fn in_csr(&self) -> &Csr {
        &self.inn
    }

    /// Iterates all stored directed edges.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.out.edges()
    }

    /// Mutation counter: 0 at construction, bumped by every
    /// [`Graph::apply_batch`]. Clones carry the version of the graph
    /// they were cloned from.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Deterministic fingerprint of the graph's full matching-relevant
    /// state: adjacency, symmetry, labels, **and** the mutation
    /// [`Graph::version`]. Computed lazily and cached; invalidated by
    /// [`Graph::apply_batch`] and [`Graph::with_labels`].
    ///
    /// Including the version means a batch followed by its exact inverse
    /// still changes the fingerprint — any artifact (snapshot, cached
    /// result trie) captured before a mutation is permanently
    /// distinguishable from the live graph, which is what makes
    /// stale-artifact rejection sound without tracking history.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            use std::hash::{Hash, Hasher};
            // DefaultHasher with fixed keys: stable within a build, the
            // same scheme the plan-cache keys use.
            let mut h = std::collections::hash_map::DefaultHasher::new();
            self.version.hash(&mut h);
            self.symmetric.hash(&mut h);
            self.num_vertices().hash(&mut h);
            self.out.offsets().hash(&mut h);
            self.out.targets().hash(&mut h);
            match &self.labels {
                Some(l) => {
                    true.hash(&mut h);
                    l.hash(&mut h);
                }
                None => false.hash(&mut h),
            }
            h.finish()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_symmetrises() {
        let g = Graph::undirected(3, &[(0, 1), (1, 2)]);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_input_edges(), 2);
        assert!(g.is_symmetric());
    }

    #[test]
    fn directed_keeps_direction() {
        let g = Graph::directed(3, &[(0, 1), (1, 2)]);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
        assert_eq!(g.in_degree(2), 1);
        assert_eq!(g.out_degree(2), 0);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn self_loops_removed() {
        let g = Graph::undirected(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    fn degree_dominates_checks_both_sides() {
        let g = Graph::directed(3, &[(0, 1), (0, 2), (1, 0)]);
        // vertex 0: out 2, in 1.
        assert!(g.degree_dominates(0, 2, 1));
        assert!(!g.degree_dominates(0, 3, 0));
        assert!(!g.degree_dominates(0, 0, 2));
    }

    #[test]
    fn labels_attach_and_filter() {
        let g = Graph::undirected(3, &[(0, 1), (1, 2)]).with_labels(vec![7, 8, 7]);
        assert!(g.is_labeled());
        assert_eq!(g.label(1), Some(8));
        let q = Graph::undirected(2, &[(0, 1)]).with_labels(vec![7, 8]);
        assert!(g.label_compatible(0, &q, 0)); // 7 == 7
        assert!(!g.label_compatible(1, &q, 0)); // 8 != 7
                                                // Unlabelled side is a wildcard.
        let unlabeled = Graph::undirected(2, &[(0, 1)]);
        assert!(g.label_compatible(1, &unlabeled, 0));
        assert!(unlabeled.label_compatible(0, &q, 1));
    }

    #[test]
    #[should_panic(expected = "one label per vertex")]
    fn wrong_label_count_panics() {
        let _ = Graph::undirected(3, &[(0, 1)]).with_labels(vec![1]);
    }

    #[test]
    fn from_out_csr_round_trips_and_validates() {
        let und = Graph::undirected(5, &[(0, 1), (0, 4), (1, 2), (2, 3), (3, 4)]);
        let back = Graph::from_out_csr(und.out_csr().clone(), true).unwrap();
        assert!(back.is_symmetric());
        assert_eq!(back.out_csr(), und.out_csr());
        assert_eq!(back.in_csr(), und.in_csr());

        let dir = Graph::directed(4, &[(0, 1), (1, 2), (3, 1)]);
        let back = Graph::from_out_csr(dir.out_csr().clone(), false).unwrap();
        assert!(!back.is_symmetric());
        assert_eq!(back.in_csr(), dir.in_csr());

        // An asymmetric adjacency must not pass as symmetric, and a
        // self-loop is never canonical.
        assert!(Graph::from_out_csr(dir.out_csr().clone(), true).is_err());
        let loopy = Csr::from_adjacency(vec![vec![0, 1], vec![0]]);
        assert!(Graph::from_out_csr(loopy.clone(), false).is_err());
        assert!(Graph::from_out_csr(loopy, true).is_err());
    }

    #[test]
    fn degree_extremes() {
        let g = Graph::undirected(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_out_degree(), 3);
        assert_eq!(g.max_in_degree(), 3);
        assert!((g.avg_out_degree() - 1.5).abs() < 1e-12);
    }
}
