//! Benchmark: planning-vs-execution ablation. Measures what the
//! QueryPlan / ExecSession split buys: a cold run (fresh session per
//! iteration — plan rebuilt, trie buffers re-allocated) against a warm
//! session (plan served from the LRU cache, buffers from the pool), and
//! the batched entry point that plans once for a whole slice of data
//! graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cuts_core::prelude::*;
use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_graph::generators::{clique, erdos_renyi};
use cuts_graph::{Dataset, Graph, Scale};

fn bench_plan_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_reuse");
    group.sample_size(10);
    let data = Dataset::Enron.generate(Scale::Tiny);
    for k in [3usize, 4] {
        let q = clique(k);
        // Cold: a fresh session every iteration pays for plan
        // construction and device allocation each time.
        group.bench_with_input(BenchmarkId::new("cold", format!("K{k}")), &q, |b, q| {
            let device = Device::new(DeviceConfig::v100_like());
            b.iter(|| {
                let session = ExecSession::new(&device, EngineConfig::default());
                black_box(session.run(&data, q).unwrap().num_matches)
            });
        });
        // Warm: one session for all iterations; after the first run the
        // plan is a cache hit and the trie buffers come from the pool.
        group.bench_with_input(BenchmarkId::new("warm", format!("K{k}")), &q, |b, q| {
            let device = Device::new(DeviceConfig::v100_like());
            let session = ExecSession::new(&device, EngineConfig::default());
            session.run(&data, q).unwrap();
            b.iter(|| black_box(session.run(&data, q).unwrap().num_matches));
        });
    }
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_reuse_batch");
    group.sample_size(10);
    let graphs: Vec<Graph> = (0..8).map(|s| erdos_renyi(200, 800, s)).collect();
    let q = clique(3);
    // Per-graph fresh engines: plan rebuilt for every data graph.
    group.bench_function(BenchmarkId::new("fresh_per_graph", "8xER"), |b| {
        let device = Device::new(DeviceConfig::v100_like());
        b.iter(|| {
            let total: u64 = graphs
                .iter()
                .map(|g| {
                    let session = ExecSession::new(&device, EngineConfig::default());
                    session.run(g, &q).unwrap().num_matches
                })
                .sum();
            black_box(total)
        });
    });
    // run_batch: plan once, execute over the whole slice.
    group.bench_function(BenchmarkId::new("run_batch", "8xER"), |b| {
        let device = Device::new(DeviceConfig::v100_like());
        let session = ExecSession::new(&device, EngineConfig::default());
        b.iter(|| {
            let total: u64 = session
                .run_batch(&graphs, &q)
                .iter()
                .map(|r| r.as_ref().unwrap().num_matches)
                .sum();
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_plan_reuse, bench_batched);
criterion_main!(benches);
