//! Benchmark: one search-kernel level expansion (Algorithm 1's inner
//! loop) on skewed and regular graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cuts_core::kernels::{expand_range, init_candidates, ExpandParams};
use cuts_core::{LevelMethod, MatchOrder};
use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_graph::generators::clique;
use cuts_graph::{Dataset, Scale};
use cuts_trie::Trie;

fn bench_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("search_kernel");
    group.sample_size(20);
    for ds in [Dataset::Enron, Dataset::RoadNetPA] {
        let data = ds.generate(Scale::Tiny);
        let query = clique(4);
        let plan = MatchOrder::compute(&query).unwrap();
        let device = Device::new(DeviceConfig::v100_like());
        group.bench_with_input(
            BenchmarkId::new("expand-level1", ds.name()),
            &data,
            |b, data| {
                b.iter(|| {
                    let mut trie = Trie::on_device(&device, 1 << 20).unwrap();
                    init_candidates(&device, data, &plan, &trie, 256, None).unwrap();
                    let lvl0 = trie.seal_level();
                    let params = ExpandParams {
                        data,
                        plan: &plan,
                        pos: 1,
                        vwarp: 8,
                        method: LevelMethod::PerPath,
                        shared_words: 24576,
                        placement: None,
                        max_blocks: 256,
                    };
                    expand_range(&device, &trie, lvl0, &params).unwrap();
                    black_box(trie.seal_level().len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_expand);
criterion_main!(benches);
