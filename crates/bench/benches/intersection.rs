//! Micro-benchmark: the three intersection kernels of Algorithm 2 across
//! list-size regimes (the data behind the adaptive selection rule).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cuts_core::intersect::{c_intersection, p_intersection, ScatterScratch};
use cuts_gpu_sim::BlockCounters;

fn lists(first: usize, rest: usize, n: usize) -> Vec<Vec<u32>> {
    let mut out = vec![(0..first as u32 * 3).step_by(3).collect::<Vec<u32>>()];
    for k in 0..n {
        out.push((k as u32..rest as u32 * 2 + k as u32).step_by(2).collect());
    }
    out
}

fn bench_intersection(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection");
    for (label, first, rest) in [
        ("balanced-64", 64, 64),
        ("balanced-1k", 1024, 1024),
        ("small-vs-large", 16, 4096),
        ("large-vs-small", 4096, 16),
    ] {
        let ls = lists(first, rest, 2);
        let refs: Vec<&[u32]> = ls.iter().map(|v| v.as_slice()).collect();
        group.bench_with_input(BenchmarkId::new("c", label), &refs, |b, refs| {
            let mut ctr = BlockCounters::default();
            let mut out = Vec::new();
            b.iter(|| {
                c_intersection(black_box(refs), 8, &mut ctr, &mut out);
                black_box(out.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("p", label), &refs, |b, refs| {
            let mut ctr = BlockCounters::default();
            let mut out = Vec::new();
            b.iter(|| {
                p_intersection(black_box(refs), 8, &mut ctr, &mut out);
                black_box(out.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("sv", label), &refs, |b, refs| {
            let mut ctr = BlockCounters::default();
            let mut out = Vec::new();
            let mut scratch = ScatterScratch::new(16_384);
            b.iter(|| {
                scratch.scatter_vector(black_box(refs), &mut ctr, &mut out);
                black_box(out.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_intersection);
criterion_main!(benches);
