//! Benchmark: the distributed runner at 1/2/4 ranks (Figure 4's workload
//! as a wall-clock criterion group).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cuts_dist::{run_distributed, DistConfig};
use cuts_gpu_sim::DeviceConfig;
use cuts_graph::generators::clique;
use cuts_graph::{Dataset, Scale};

fn bench_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    let data = Dataset::Enron.generate(Scale::Tiny);
    let query = clique(4);
    for ranks in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("ranks", ranks), &ranks, |b, &ranks| {
            let config = DistConfig {
                device: DeviceConfig::test_small(),
                dist_chunk: 32,
                ..Default::default()
            };
            b.iter(|| {
                black_box(
                    run_distributed(&data, &query, ranks, &config)
                        .unwrap()
                        .total_matches,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranks);
criterion_main!(benches);
