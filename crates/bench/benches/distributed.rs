//! Benchmark: the distributed runner at 1/2/4 ranks (Figure 4's workload
//! as a wall-clock criterion group), plus the same workload under an
//! injected rank crash to price the recovery path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cuts_dist::{run, DistConfig, FaultPlan};
use cuts_gpu_sim::DeviceConfig;
use cuts_graph::generators::clique;
use cuts_graph::{Dataset, Scale};

fn bench_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed");
    group.sample_size(10);
    let data = Dataset::Enron.generate(Scale::Tiny);
    let query = clique(4);
    for ranks in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("ranks", ranks), &ranks, |b, &ranks| {
            let config = DistConfig {
                device: DeviceConfig::test_small(),
                dist_chunk: 32,
                ..Default::default()
            };
            b.iter(|| black_box(run(&data, &query, ranks, &config).unwrap().total_matches));
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed-recovery");
    group.sample_size(10);
    let data = Dataset::Enron.generate(Scale::Tiny);
    let query = clique(4);
    for ranks in [2usize, 4] {
        // One rank dies after its first committed chunk; the survivors
        // absorb its work. Compare against the clean `distributed/ranks`
        // group above for the fault-tolerance overhead.
        group.bench_with_input(BenchmarkId::new("one-crash", ranks), &ranks, |b, &ranks| {
            let config = DistConfig {
                device: DeviceConfig::test_small(),
                dist_chunk: 32,
                rank_timeout: Duration::from_millis(20),
                fault_plan: FaultPlan::parse("crash:1@1").unwrap(),
                ..Default::default()
            };
            b.iter(|| black_box(run(&data, &query, ranks, &config).unwrap().total_matches));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranks, bench_recovery);
criterion_main!(benches);
