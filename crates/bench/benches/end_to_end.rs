//! Benchmark: full matching runs — cuTS vs the GSI-style and
//! Gunrock-style baselines on the enron stand-in (the Table 3 engine
//! comparison as a wall-clock criterion group).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cuts_baseline::{GsiEngine, GunrockEngine};
use cuts_core::prelude::*;
use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_graph::generators::clique;
use cuts_graph::{Dataset, Scale};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let data = Dataset::Enron.generate(Scale::Tiny);
    for k in [3usize, 4] {
        let q = clique(k);
        group.bench_with_input(BenchmarkId::new("cuts", format!("K{k}")), &q, |b, q| {
            let device = Device::new(DeviceConfig::v100_like());
            let engine = CutsEngine::new(&device);
            b.iter(|| black_box(engine.run(&data, q).unwrap().num_matches));
        });
        group.bench_with_input(BenchmarkId::new("gsi", format!("K{k}")), &q, |b, q| {
            let device = Device::new(DeviceConfig::v100_like());
            let engine = GsiEngine::new(&device);
            b.iter(|| black_box(engine.run(&data, q).unwrap().num_matches));
        });
        group.bench_with_input(BenchmarkId::new("gunrock", format!("K{k}")), &q, |b, q| {
            let device = Device::new(DeviceConfig::v100_like());
            let engine = GunrockEngine::new(&device);
            b.iter(|| black_box(engine.run(&data, q).unwrap().num_matches));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
