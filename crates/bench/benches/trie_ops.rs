//! Benchmark: trie primitives — concurrent reserve/write throughput (the
//! one-atomic-per-burst claim), path extraction, donation round-trip.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use cuts_trie::serial::{decode_trie, encode_trie};
use cuts_trie::{HostTrie, PairTable, Trie, NO_PARENT};

fn bench_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_table");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("reserve_write_100k", |b| {
        b.iter(|| {
            let t = PairTable::on_host(100_000);
            for i in 0..1000u32 {
                let r = t.reserve(100).unwrap();
                for k in 0..100u32 {
                    r.write(k as usize, i, k);
                }
            }
            black_box(t.len())
        });
    });
    group.finish();
}

fn deep_trie(depth: usize, fanout: usize) -> Trie {
    let mut t = Trie::on_host(4_000_000);
    {
        let r = t.table().reserve(1).unwrap();
        r.write(0, NO_PARENT, 0);
    }
    t.seal_level();
    for _ in 1..depth {
        let prev = t.level(t.num_levels() - 1);
        let r = t.table().reserve(prev.len() * fanout).unwrap();
        let mut k = 0;
        for p in prev {
            for f in 0..fanout {
                r.write(k, p as u32, f as u32);
                k += 1;
            }
        }
        t.seal_level();
    }
    t
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_paths");
    let t = deep_trie(7, 6);
    let last = t.level(t.num_levels() - 1);
    group.throughput(Throughput::Elements(last.len() as u64));
    group.bench_function("extract_all_depth7", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for i in last.clone() {
                total += t.extract_path(i).len();
            }
            black_box(total)
        });
    });
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("trie_wire");
    let paths: Vec<Vec<u32>> = (0..4096u32).map(|i| vec![i / 64, i / 8, i]).collect();
    let host = HostTrie::from_flat_paths(&paths);
    group.bench_function("encode_decode_4k_paths", |b| {
        b.iter(|| {
            let enc = encode_trie(black_box(&host));
            black_box(decode_trie(enc).unwrap().len())
        });
    });
    group.bench_function("from_flat_paths_4k", |b| {
        b.iter(|| black_box(HostTrie::from_flat_paths(black_box(&paths)).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_table, bench_paths, bench_wire);
criterion_main!(benches);
