#![warn(missing_docs)]

//! Shared harness utilities for the table/figure regeneration binaries.
//!
//! Every binary honours two environment variables:
//!
//! * `CUTS_SCALE` — `tiny` (default), `small`, `medium`, `paper`: the
//!   proportional dataset scale (see [`cuts_graph::Scale`]). Device memory
//!   budgets scale along with the data so the OOM *shape* of Table 3 is
//!   preserved at every scale.
//! * `CUTS_QUICK` — when set to `1`, restricts query suites (drops the
//!   7-vertex set) so a full table finishes in seconds. Passing `--quick`
//!   on the command line is equivalent (used by the CI smoke step).

use cuts_gpu_sim::DeviceConfig;
use cuts_graph::{Dataset, Scale};

/// Which of the paper's two machines a run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Machine {
    /// Nvidia A100-shaped (108 SMs, 40 GB).
    A100,
    /// Nvidia V100-shaped (84 SMs, 32 GB).
    V100,
}

impl Machine {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Machine::A100 => "A100",
            Machine::V100 => "V100",
        }
    }

    /// Paper global-memory capacity in words (40 GB / 32 GB over 4-byte
    /// words).
    fn paper_words(self) -> f64 {
        match self {
            Machine::A100 => 10.0 * (1u64 << 30) as f64,
            Machine::V100 => 8.0 * (1u64 << 30) as f64,
        }
    }

    /// Device config with memory scaled to the dataset scale, so the
    /// memory:data ratio matches the paper's machines.
    ///
    /// Caveat: intermediate-result volume grows *superlinearly* with graph
    /// size on heavy-tailed graphs (|P_l| is dominated by δ_max^l and the
    /// max degree shrinks with the stand-in), so down-scaled runs are
    /// relatively light on memory and the paper's "-" failures disappear.
    /// Set `CUTS_MEM_DIV=<n>` to divide the budget and restore the
    /// memory-pressure regime (EXPERIMENTS.md uses 512 at tiny scale).
    pub fn device_config(self, scale: Scale) -> DeviceConfig {
        let base = match self {
            Machine::A100 => DeviceConfig::a100_like(),
            Machine::V100 => DeviceConfig::v100_like(),
        };
        let div: f64 = std::env::var("CUTS_MEM_DIV")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        let words = (self.paper_words() * scale.factor() / div.max(1.0)) as usize;
        base.with_global_mem_words(words.max(1 << 14))
    }
}

/// Reads `CUTS_SCALE` (default tiny).
pub fn scale_from_env() -> Scale {
    match std::env::var("CUTS_SCALE").as_deref() {
        Ok("paper") => Scale::Paper,
        Ok("medium") => Scale::Medium,
        Ok("small") => Scale::Small,
        _ => Scale::Tiny,
    }
}

/// Quick mode: `CUTS_QUICK=1` in the environment or `--quick` on the
/// command line (the CI smoke step uses the flag form).
pub fn quick_from_env() -> bool {
    std::env::var("CUTS_QUICK").as_deref() == Ok("1") || std::env::args().any(|a| a == "--quick")
}

/// Query-vertex counts to sweep: `[5, 6, 7]`, or `[5]` in quick mode.
pub fn query_sizes() -> Vec<usize> {
    if quick_from_env() {
        vec![5]
    } else {
        vec![5, 6, 7]
    }
}

/// Datasets to sweep (all six; quick mode keeps the three smallest).
pub fn datasets() -> Vec<Dataset> {
    if quick_from_env() {
        vec![Dataset::Enron, Dataset::RoadNetPA, Dataset::Gowalla]
    } else {
        Dataset::ALL.to_vec()
    }
}

/// Geometric mean of strictly-positive values; `None` when empty.
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Formats a milliseconds-or-failure cell like the paper's Table 3.
pub fn cell(v: Option<f64>) -> String {
    match v {
        Some(ms) => format!("{ms:.3}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!(geomean(&[]).is_none());
        let g = geomean(&[1.0, 100.0]).unwrap();
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn device_memory_tracks_scale() {
        let tiny = Machine::V100.device_config(Scale::Tiny);
        let small = Machine::V100.device_config(Scale::Small);
        assert!(small.global_mem_words > tiny.global_mem_words);
        // Tiny V100: 8 Gwords / 256 = 32 Mwords — the preset's default.
        assert_eq!(tiny.global_mem_words, 32 << 20);
    }

    #[test]
    fn a100_has_more_memory_than_v100() {
        let a = Machine::A100.device_config(Scale::Tiny);
        let v = Machine::V100.device_config(Scale::Tiny);
        assert!(a.global_mem_words > v.global_mem_words);
        assert_eq!(Machine::A100.name(), "A100");
        assert_eq!(a.name, "sim-A100");
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(cell(Some(1.5)), "1.500");
        assert_eq!(cell(None), "-");
    }
}
