//! Intersection micro-kernel bench: the paper's fixed c-intersection
//! (prefilter off — the cuTS baseline) against the shipped default (the
//! plan-time auto policy plus the signature prefilter), on workloads
//! spanning both win sources: signature pruning of root candidates and
//! the per-level kernel choice. Match counts are asserted identical for
//! every case; the headline number is the geomean reduction in DRAM
//! words (reads + writes), and the PR gate is ≥ 1.25×. Emits
//! `BENCH_intersect.json`.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin intersect -- --quick
//! ```
//!
//! `--quick` (equivalently `CUTS_QUICK=1`) keeps only the first few
//! cases so the CI smoke step stays under a second.

use cuts_bench::{geomean, quick_from_env, Machine};
use cuts_core::{CutsEngine, EngineConfig, IntersectStrategy};
use cuts_gpu_sim::Device;
use cuts_graph::generators::{chain, clique, cycle, star};
use cuts_graph::labels::{random_labels, zipf_labels};
use cuts_graph::{Dataset, Graph, Scale};
use cuts_obs::Json;

struct Case {
    name: &'static str,
    data: Graph,
    query: Graph,
}

/// The two win sources, each represented by several workloads:
/// * heavy-tailed degree distributions (wikitalk, the star) where the
///   per-path hedge routes hub paths to the p-kernel while fixed-c
///   streams every adjacency list in full;
/// * selective root predicates (labelled graphs, dense queries on
///   sparse road networks) where the signature prefilter prunes level-0
///   candidates before any adjacency list is touched.
fn cases(quick: bool) -> Vec<Case> {
    let s = Scale::Custom(1.0 / 1024.0);
    let wikitalk = Dataset::WikiTalk.generate(Scale::Custom(1.0 / 2048.0));
    let roadnet = Dataset::RoadNetPA.generate(s);
    let roadnet_l = {
        let l = random_labels(roadnet.num_vertices(), 4, 9);
        roadnet.clone().with_labels(l)
    };
    let mut v = vec![
        Case {
            name: "star/K3",
            data: star(400),
            query: clique(3),
        },
        Case {
            name: "wikitalk/K3",
            data: wikitalk.clone(),
            query: clique(3),
        },
        Case {
            name: "roadnet-l/chain3",
            data: roadnet_l.clone(),
            query: chain(3).with_labels(vec![0, 1, 2]),
        },
        Case {
            name: "enron/K4",
            data: Dataset::Enron.generate(s),
            query: clique(4),
        },
    ];
    if !quick {
        let gowalla_l = {
            let g = Dataset::Gowalla.generate(s);
            let l = random_labels(g.num_vertices(), 6, 5);
            g.with_labels(l)
        };
        let enron_z = {
            let g = Dataset::Enron.generate(s);
            let l = zipf_labels(g.num_vertices(), 4, 11);
            g.with_labels(l)
        };
        v.extend([
            Case {
                name: "wikitalk/K4",
                data: wikitalk.clone(),
                query: clique(4),
            },
            Case {
                name: "wikitalk/C4",
                data: wikitalk,
                query: cycle(4),
            },
            Case {
                name: "roadnet/C4",
                data: roadnet,
                query: cycle(4),
            },
            Case {
                name: "roadnet-l/C4",
                data: roadnet_l,
                query: cycle(4).with_labels(vec![0, 1, 2, 3]),
            },
            Case {
                name: "gowalla-l/K3",
                data: gowalla_l.clone(),
                query: clique(3).with_labels(vec![0, 1, 2]),
            },
            Case {
                name: "gowalla-l/C4",
                data: gowalla_l,
                query: cycle(4).with_labels(vec![0, 1, 2, 3]),
            },
            Case {
                name: "enron-z/K3",
                data: enron_z,
                query: clique(3).with_labels(vec![2, 3, 3]),
            },
        ]);
    }
    v
}

/// One run; returns (matches, dram words).
fn run(data: &Graph, query: &Graph, config: EngineConfig) -> (u64, u64) {
    let device = Device::new(Machine::V100.device_config(Scale::Tiny));
    let r = CutsEngine::with_config(&device, config)
        .run(data, query)
        .expect("bench case fits the device");
    (r.num_matches, r.counters.dram_total())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || quick_from_env();
    let cases = cases(quick);
    println!(
        "intersect: {} case(s), baseline fixed-c / no prefilter vs auto policy + prefilter (quick={quick})",
        cases.len()
    );
    println!(
        "{:<18} {:>12} {:>14} {:>14} {:>8}",
        "case", "matches", "baseline dram", "auto dram", "ratio"
    );

    let mut entries: Vec<Json> = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();
    for c in &cases {
        let (m_base, dram_base) = run(
            &c.data,
            &c.query,
            EngineConfig::default()
                .with_intersect(IntersectStrategy::CIntersection)
                .with_signature_prefilter(false),
        );
        let (m_auto, dram_auto) = run(&c.data, &c.query, EngineConfig::default());
        assert_eq!(
            m_base, m_auto,
            "{}: strategies must agree on the match count",
            c.name
        );
        let ratio = dram_base as f64 / dram_auto.max(1) as f64;
        ratios.push(ratio);
        println!(
            "{:<18} {:>12} {:>14} {:>14} {:>7.2}x",
            c.name, m_base, dram_base, dram_auto, ratio
        );
        entries.push(Json::obj([
            ("case", Json::Str(c.name.into())),
            ("matches", Json::U64(m_base)),
            ("dram_words_baseline", Json::U64(dram_base)),
            ("dram_words_auto", Json::U64(dram_auto)),
            ("ratio", Json::F64(ratio)),
        ]));
    }

    let g = geomean(&ratios).unwrap_or(0.0);
    let out = Json::obj([
        ("bench", Json::Str("intersect".into())),
        ("quick", Json::U64(quick as u64)),
        ("cases", Json::arr(entries)),
        ("geomean_dram_reduction", Json::F64(g)),
        ("counts_identical", Json::U64(1)),
    ]);
    std::fs::write("BENCH_intersect.json", out.render()).expect("write BENCH_intersect.json");
    println!("  wrote BENCH_intersect.json (geomean dram reduction {g:.2}x, gate >= 1.25x)");
    assert!(
        g >= 1.25,
        "geomean dram reduction {g:.2}x below the 1.25x gate"
    );
}
