//! Snapshot warm-start bench: time-to-first-result from a cold start
//! (parse the edge-list text, build the degree/signature profile, build
//! the query plan, run) against a warm start (read and decode the
//! checksummed snapshot container, seed the session, run). Both paths
//! begin at a file on disk and end at the same match count; the headline
//! number is the geomean cold/warm latency ratio and the PR gate is
//! ≥ 2×. Emits `BENCH_snapshot.json`.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin snapshot -- --quick
//! ```
//!
//! `--quick` (equivalently `CUTS_QUICK=1`) keeps only the first cases so
//! the CI smoke step stays fast.

use std::path::{Path, PathBuf};
use std::time::Instant;

use cuts_bench::{geomean, quick_from_env, Machine};
use cuts_core::{EngineConfig, ExecSession, Snapshot};
use cuts_gpu_sim::Device;
use cuts_graph::{edgelist, Dataset, Graph, Scale};
use cuts_obs::Json;

struct Case {
    name: &'static str,
    data: Graph,
    query: Graph,
}

/// The warm-start scenario: boot a service over a large sparse graph and
/// answer a selective point query. The enumeration itself is cheap, so
/// the first-query latency is dominated by how fast the data gets into
/// the engine — text parse + profile + plan cold, container decode warm.
fn cases(quick: bool) -> Vec<Case> {
    use cuts_graph::generators::clique;
    let s = Scale::Custom(1.0 / 32.0);
    let mut v = vec![
        Case {
            name: "roadnet-pa/K5",
            data: Dataset::RoadNetPA.generate(s),
            query: clique(5),
        },
        Case {
            name: "roadnet-tx/K4",
            data: Dataset::RoadNetTX.generate(s),
            query: clique(4),
        },
    ];
    if !quick {
        v.extend([
            Case {
                name: "roadnet-ca/K4",
                data: Dataset::RoadNetCA.generate(s),
                query: clique(4),
            },
            Case {
                name: "roadnet-pa-2x/K4",
                data: Dataset::RoadNetPA.generate(Scale::Custom(1.0 / 16.0)),
                query: clique(4),
            },
        ]);
    }
    v
}

/// Writes the graph as the SNAP-style text file a cold start ingests.
fn write_edgelist(g: &Graph, path: &Path) {
    let mut text = String::new();
    for (u, v) in g.edges() {
        if u < v {
            text.push_str(&format!("{u} {v}\n"));
        }
    }
    std::fs::write(path, text).expect("write edge list");
}

/// Cold start: text parse, profile build, plan build, first run.
fn cold_first_query(edge_path: &Path, query: &Graph) -> (u64, f64) {
    let start = Instant::now();
    let data = edgelist::load_undirected(edge_path).expect("parse edge list");
    let device = Device::new(Machine::V100.device_config(Scale::Tiny));
    let session = ExecSession::new(&device, EngineConfig::default());
    let r = session.run(&data, query).expect("cold run");
    (r.num_matches, start.elapsed().as_secs_f64() * 1e3)
}

/// Warm start: decode the container, seed the session, first run. Zero
/// plan builds is asserted, not assumed.
fn warm_first_query(snap_path: &Path, query: &Graph) -> (u64, f64) {
    let start = Instant::now();
    let snap = Snapshot::read_from(snap_path).expect("read snapshot");
    let device = Device::new(Machine::V100.device_config(Scale::Tiny));
    let session = ExecSession::from_snapshot(&device, EngineConfig::default(), &snap);
    let r = session.run(snap.graph(), query).expect("warm run");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        session.stats().plans.misses,
        0,
        "warm start must not build plans"
    );
    (r.num_matches, ms)
}

/// Best of `reps` to damp scheduler noise on sub-millisecond laps.
fn best_of(reps: usize, mut f: impl FnMut() -> (u64, f64)) -> (u64, f64) {
    let mut best = f();
    for _ in 1..reps {
        let next = f();
        assert_eq!(next.0, best.0, "repeat runs must agree");
        if next.1 < best.1 {
            best = next;
        }
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || quick_from_env();
    let cases = cases(quick);
    let dir: PathBuf = std::env::temp_dir().join("cuts_bench_snapshot");
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    println!(
        "snapshot: {} case(s), cold (parse+profile+plan+run) vs warm (decode+run) first-query latency (quick={quick})",
        cases.len()
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>8}",
        "case", "matches", "cold ms", "warm ms", "ratio"
    );

    let mut entries: Vec<Json> = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();
    for (i, c) in cases.iter().enumerate() {
        let edge_path = dir.join(format!("case{i}.txt"));
        let snap_path = dir.join(format!("case{i}.snap"));
        write_edgelist(&c.data, &edge_path);
        // Build the snapshot exactly as `cuts snapshot build` would: plan
        // the query on the same device class the warm session will use.
        {
            let device = Device::new(Machine::V100.device_config(Scale::Tiny));
            let session = ExecSession::new(&device, EngineConfig::default());
            session.plan_for(&c.query).expect("plannable");
            Snapshot::capture(&c.data, &session)
                .write_to(&snap_path)
                .expect("write snapshot");
        }
        let reps = if quick { 3 } else { 5 };
        let (m_cold, cold_ms) = best_of(reps, || cold_first_query(&edge_path, &c.query));
        let (m_warm, warm_ms) = best_of(reps, || warm_first_query(&snap_path, &c.query));
        assert_eq!(
            m_cold, m_warm,
            "{}: warm start must reproduce the cold count",
            c.name
        );
        let ratio = cold_ms / warm_ms.max(f64::MIN_POSITIVE);
        ratios.push(ratio);
        println!(
            "{:<18} {:>12} {:>12.3} {:>12.3} {:>7.2}x",
            c.name, m_cold, cold_ms, warm_ms, ratio
        );
        entries.push(Json::obj([
            ("case", Json::Str(c.name.into())),
            ("matches", Json::U64(m_cold)),
            ("cold_first_query_ms", Json::F64(cold_ms)),
            ("warm_first_query_ms", Json::F64(warm_ms)),
            ("ratio", Json::F64(ratio)),
        ]));
    }

    let g = geomean(&ratios).unwrap_or(0.0);
    let out = Json::obj([
        ("bench", Json::Str("snapshot".into())),
        ("quick", Json::U64(quick as u64)),
        ("cases", Json::arr(entries)),
        ("geomean_cold_over_warm", Json::F64(g)),
        ("counts_identical", Json::U64(1)),
    ]);
    std::fs::write("BENCH_snapshot.json", out.render()).expect("write BENCH_snapshot.json");
    println!("  wrote BENCH_snapshot.json (geomean cold/warm {g:.2}x, gate >= 2x)");
    assert!(g >= 2.0, "cold/warm ratio {g:.2}x below the 2x gate");
}
