//! Batch-dynamic matching: streaming edge updates served by incremental
//! trie maintenance ([`cuts_core::DynamicSession`]) versus the naive
//! full recompute a static engine would pay after every batch. Each
//! scenario replays a deterministic schedule of small batches (every
//! batch edits well under 1% of the graph's edges); after each batch the
//! incremental match set must be byte-identical to a cold enumeration
//! over the mutated graph. Emits `BENCH_dynamic.json`.
//!
//! The headline number is **gated**: the geometric-mean ratio of
//! simulated recompute time to simulated incremental time across all
//! scenarios must be at least [`MIN_SPEEDUP`], or the bench aborts.
//! Simulated device time is deterministic, so the gate is runner-safe.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin dynamic -- --quick
//! ```
//!
//! `--quick` (equivalently `CUTS_QUICK=1`) shortens every schedule so
//! the CI smoke step finishes quickly.

use std::collections::BTreeSet;

use cuts_core::prelude::*;
use cuts_core::DynamicSession;
use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_graph::generators::{barabasi_albert, chain, clique, cycle, erdos_renyi, mesh2d};
use cuts_graph::{EdgeBatch, Graph, VertexId};
use cuts_obs::{EventKind, Json, Trace};

/// Recompute-to-incremental simulated-time ratio the geomean must clear.
const MIN_SPEEDUP: f64 = 2.0;

/// Edits per batch. Small on purpose: the incremental path's advantage
/// is locality, and every scenario graph has well over `400` edges, so
/// four edits stay under the 1%-of-edges regime the bench advertises.
const EDITS_PER_BATCH: usize = 4;

/// Deterministic 64-bit LCG (MMIX constants): the bench must not drift
/// between runs, so no external RNG.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

struct Scenario {
    name: &'static str,
    graph: Graph,
    query_name: &'static str,
    query: Graph,
    seed: u64,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "mesh-80x80",
            graph: mesh2d(80, 80),
            query_name: "cycle4",
            query: cycle(4),
            seed: 1,
        },
        // Adversarial locality: preferential attachment means a random
        // edit often lands next to a hub, whose 2-hop ball swallows much
        // of the graph — the incremental win here is small by design,
        // and the geomean gate absorbs it.
        Scenario {
            name: "ba-3000-tri",
            graph: barabasi_albert(3000, 6, 42),
            query_name: "triangle",
            query: clique(3),
            seed: 2,
        },
        Scenario {
            name: "er-4000-chain",
            graph: erdos_renyi(4000, 16_000, 7),
            query_name: "chain3",
            query: chain(3),
            seed: 3,
        },
    ]
}

/// Undirected edge set of `g`, canonicalised as `u < v` pairs.
fn edge_set(g: &Graph) -> BTreeSet<(VertexId, VertexId)> {
    g.edges().filter(|(u, v)| u < v).collect()
}

/// The next batch of the schedule: alternating inserts of absent edges
/// and deletes of present ones, tracked against `edges` so inverse pairs
/// and duplicates never collide within one batch.
fn next_batch(
    rng: &mut Lcg,
    n: usize,
    edges: &mut BTreeSet<(VertexId, VertexId)>,
    edits: usize,
) -> EdgeBatch {
    let mut batch = EdgeBatch::new();
    for i in 0..edits {
        if i % 2 == 0 {
            // Insert an edge that does not exist yet.
            loop {
                let u = rng.below(n) as VertexId;
                let v = rng.below(n) as VertexId;
                let key = (u.min(v), u.max(v));
                if u != v && edges.insert(key) {
                    batch.insert(key.0, key.1);
                    break;
                }
            }
        } else {
            // Delete a uniformly chosen existing edge.
            let idx = rng.below(edges.len());
            let key = *edges.iter().nth(idx).expect("non-empty edge set");
            edges.remove(&key);
            batch.delete(key.0, key.1);
        }
    }
    batch
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CUTS_QUICK").is_ok_and(|v| v == "1");
    let batches_per_scenario = if quick { 3 } else { 8 };
    println!(
        "dynamic: {} batch(es) of {EDITS_PER_BATCH} edit(s) per scenario (quick={quick})",
        batches_per_scenario
    );

    // One traced device for the incremental sessions: the journal proves
    // the maintenance path actually ran (subtree releases, chain grows).
    // The small preset's modest bandwidth keeps the roofline in the
    // memory-bound regime the paper targets, so traversal traffic (not
    // fixed launch overhead) decides the comparison.
    let trace = Trace::enabled();
    let mut inc_device = Device::new(DeviceConfig::test_small());
    inc_device.set_trace(trace.clone());
    // The recompute baseline gets its own untraced device so its slab
    // traffic cannot pollute the event counts.
    let rec_device = Device::new(DeviceConfig::test_small());
    let rec_session = ExecSession::new(&rec_device, EngineConfig::default());

    let mut rows: Vec<Json> = Vec::new();
    let mut ln_sum = 0.0f64;
    let mut verified = true;
    for sc in scenarios() {
        let mut rng = Lcg(sc.seed);
        let mut edges = edge_set(&sc.graph);
        let start_edges = edges.len();
        assert!(
            EDITS_PER_BATCH * 100 <= start_edges,
            "{}: batches must stay under 1% of {} edges",
            sc.name,
            start_edges
        );

        let mut live = DynamicSession::new(&inc_device, EngineConfig::default(), sc.graph.clone());
        let qid = live.register(&sc.query).expect("standing query registers");

        let mut inc_sim = 0.0f64;
        let mut rec_sim = 0.0f64;
        let mut streamed = 0u64;
        for _ in 0..batches_per_scenario {
            let batch = next_batch(
                &mut rng,
                sc.graph.num_vertices(),
                &mut edges,
                EDITS_PER_BATCH,
            );
            let outcome = live.apply_batch(&batch).expect("valid batch applies");
            inc_sim += outcome.deltas.iter().map(|d| d.sim_millis).sum::<f64>();
            streamed += outcome.deltas.iter().map(|d| d.len() as u64).sum::<u64>();

            // What a static engine pays: a cold enumeration over the
            // mutated graph. Its matches double as ground truth.
            let mut full: BTreeSet<Vec<VertexId>> = BTreeSet::new();
            let res = rec_session
                .run_enumerate(live.graph(), &sc.query, &mut |m| {
                    full.insert(m.to_vec());
                })
                .expect("recompute succeeds");
            rec_sim += res.sim_millis;
            if live.match_set(qid) != full {
                verified = false;
                eprintln!("{}: incremental state diverged from recompute", sc.name);
            }
        }

        let speedup = rec_sim / inc_sim.max(f64::MIN_POSITIVE);
        ln_sum += speedup.ln();
        println!(
            "  {:<14} {:<9} {:>7.3} ms incremental vs {:>8.3} ms recompute  ({:.1}x, {} delta row(s))",
            sc.name, sc.query_name, inc_sim, rec_sim, speedup, streamed
        );
        rows.push(Json::obj([
            ("scenario", Json::Str(sc.name.into())),
            ("query", Json::Str(sc.query_name.into())),
            ("edges", Json::U64(start_edges as u64)),
            ("batches", Json::U64(batches_per_scenario as u64)),
            ("edits_per_batch", Json::U64(EDITS_PER_BATCH as u64)),
            ("incremental_sim_millis", Json::F64(inc_sim)),
            ("recompute_sim_millis", Json::F64(rec_sim)),
            ("speedup", Json::F64(speedup)),
            ("deltas_streamed", Json::U64(streamed)),
        ]));
    }
    let geomean = (ln_sum / rows.len() as f64).exp();

    // Evidence the incremental path ran: every dirty subtree drop emits
    // a `subtree_release` trie event, and mid-run slab appends emit
    // `chain_grow` arena events. CI greps these counts.
    let journal = trace.journal().expect("enabled trace has a journal");
    let events = journal.snapshot_sorted();
    let released = events
        .iter()
        .filter(|e| e.kind == EventKind::Trie && e.name == "subtree_release")
        .count();
    let grows = events
        .iter()
        .filter(|e| e.kind == EventKind::Arena && e.name == "chain_grow")
        .count();
    assert!(
        released > 0,
        "no subtree was ever released: incremental path did not run"
    );
    assert!(verified, "incremental match sets diverged from recompute");
    assert!(
        geomean >= MIN_SPEEDUP,
        "incremental speedup below the gate: {geomean:.2}x < {MIN_SPEEDUP:.1}x geomean"
    );

    let out = Json::obj([
        ("bench", Json::Str("dynamic".into())),
        ("quick", Json::U64(quick as u64)),
        ("scenarios", Json::Arr(rows)),
        ("geomean_speedup", Json::F64(geomean)),
        ("speedup_gate", Json::F64(MIN_SPEEDUP)),
        ("subtree_release_events", Json::U64(released as u64)),
        ("chain_grow_events", Json::U64(grows as u64)),
        ("matched_recompute", Json::Bool(true)),
    ]);
    std::fs::write("BENCH_dynamic.json", out.render()).expect("write BENCH_dynamic.json");
    println!(
        "  wrote BENCH_dynamic.json (geomean speedup {geomean:.2}x, {released} subtree release(s), {grows} chain grow(s))"
    );
}
