//! Ablation 1 (§6 narrative): the query-ordering heuristic. The paper
//! attributes "more than 785x fewer candidates at depth 1 and 26,000x
//! lower candidates at depth 2" to rooting at the max-degree query vertex.
//! This ablation runs cuTS with its degree-greedy order and with the
//! id-order BFS a label-less GSI effectively uses, and reports candidate
//! counts per depth plus total work.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin ablation_order
//! ```

use cuts_bench::{scale_from_env, Machine};
use cuts_core::{CutsEngine, EngineConfig, OrderPolicy};
use cuts_gpu_sim::Device;
use cuts_graph::generators::clique;
use cuts_graph::query_gen::query_set;
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    let data = Dataset::Enron.generate(scale);
    println!(
        "Ablation: query ordering on enron-like @ {scale:?} ({} vertices)\n",
        data.num_vertices()
    );
    println!(
        "{:<8} {:>14} {:>16} {:>16} {:>14} {:>12}",
        "query", "|P1| greedy", "|P1| id-bfs", "instr greedy", "instr id-bfs", "work ratio"
    );

    // Regular queries (K5) are order-insensitive — every root has the
    // same degree — so they anchor the comparison at 1.0x. The effect the
    // paper describes appears on degree-skewed queries, where id-order
    // roots at a low-degree vertex: a chain, a star seen from a leaf, and
    // a "lollipop" (K4 with a pendant vertex carrying id 0).
    use cuts_graph::generators::chain;
    use cuts_graph::Graph;
    let lollipop = Graph::undirected(5, &[(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (0, 4)]);
    let mut queries = vec![
        ("K5".to_string(), clique(5)),
        ("chain5".to_string(), chain(5)),
        ("lolli".to_string(), lollipop),
    ];
    for q in query_set(5, 4).into_iter().skip(2) {
        queries.push((q.name.clone(), q.graph));
    }

    for (name, q) in &queries {
        let mut row = Vec::new();
        for policy in [OrderPolicy::DegreeGreedy, OrderPolicy::IdBfs] {
            let device = Device::new(Machine::V100.device_config(scale));
            let engine =
                CutsEngine::with_config(&device, EngineConfig::default().with_order_policy(policy));
            match engine.run(&data, q) {
                Ok(r) => row.push(Some((r.level_counts[0], r.counters.instructions))),
                Err(_) => row.push(None),
            }
        }
        match (&row[0], &row[1]) {
            (Some((p1g, ig)), Some((p1b, ib))) => println!(
                "{:<8} {:>14} {:>16} {:>16} {:>14} {:>11.1}x",
                name,
                p1g,
                p1b,
                ig,
                ib,
                *ib as f64 / (*ig).max(1) as f64
            ),
            (Some((p1g, ig)), None) => println!(
                "{:<8} {:>14} {:>16} {:>16} {:>14} {:>12}",
                name, p1g, "-", ig, "OOM", "inf"
            ),
            _ => println!("{name:<8} both failed"),
        }
    }
    println!("\nexpected: id-bfs roots at an arbitrary vertex, so |P1| inflates toward |V|");
    println!("and total work inflates with it — the paper's ordering claim.");
}
