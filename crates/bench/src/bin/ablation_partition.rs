//! Ablation 7 (§4.2): initial work partitioning and the donation
//! protocol. Round-robin starts balanced; a contiguous block split on a
//! skewed graph does not; all-to-rank-0 is the worst case. The donation
//! protocol should pull all three toward similar makespans.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin ablation_partition
//! ```

use cuts_bench::{scale_from_env, Machine};
use cuts_dist::worker::Partition;
use cuts_dist::{run, DistConfig};
use cuts_graph::generators::clique;
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    let data = Dataset::Enron.generate(scale);
    let query = clique(4);
    println!("Ablation: partitioning + donation, enron-like @ {scale:?}, K4, 4 nodes\n");
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>12} {:>12}",
        "partition", "matches", "makespan", "balance", "donations", "msgs"
    );
    for (label, partition) in [
        ("round-robin", Partition::RoundRobin),
        ("block", Partition::Block),
        ("all-to-rank0", Partition::AllToRankZero),
    ] {
        let config = DistConfig {
            device: Machine::V100.device_config(scale),
            dist_chunk: 4,
            partition,
            pacing: 25.0,
            ..Default::default()
        };
        let r = run(&data, &query, 4, &config).expect("run");
        let donations: usize = r.per_rank.iter().map(|m| m.donations_sent).sum();
        let msgs: u64 = r.per_rank.iter().map(|m| m.messages_sent).sum();
        println!(
            "{:<16} {:>12} {:>12.3} {:>9.2} {:>12} {:>12}",
            label,
            r.total_matches,
            r.makespan_sim_millis(),
            r.balance_ratio(),
            donations,
            msgs
        );
    }
    println!("\nexpected: identical counts everywhere; donations rise as the initial");
    println!("split worsens, keeping makespan within a small factor of round-robin.");
}
