//! Telemetry overhead: the bundled job manifest replayed through the
//! serial executor with serving telemetry (registry + flight recorder)
//! enabled and disabled, interleaved and min-of-reps, plus ns/record
//! microbenchmarks for every hot-path instrument. Emits `BENCH_obs.json`.
//!
//! The always-on budget is ≤5% wall overhead with byte-identical per-job
//! results; the process aborts if either is violated.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin obs -- --quick
//! ```
//!
//! `--quick` (equivalently `CUTS_QUICK=1`) shrinks the job stream and
//! rep count so the CI smoke step finishes quickly.

use cuts_core::prelude::*;
use cuts_core::sched::parse_manifest;
use cuts_obs::flight::{self, FlightCode};
use cuts_obs::{Json, Registry};
use std::time::Instant;

fn manifest_jobs(quick: bool) -> Vec<Job> {
    let text = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../manifests/serve_demo.jobs"
    ));
    let mut jobs = parse_manifest(text).expect("bundled manifest parses");
    if quick {
        jobs.truncate(jobs.len() / 2);
    }
    jobs
}

fn scheduler_for(telemetry: bool) -> Scheduler {
    Scheduler::builder()
        .telemetry(telemetry)
        .build()
        .expect("valid scheduler config")
}

/// One serial replay; returns (wall ms, per-job canonical bytes).
fn replay(jobs: &[Job], telemetry: bool) -> (f64, Vec<Option<Vec<u8>>>) {
    flight::set_enabled(telemetry);
    let report = scheduler_for(telemetry)
        .run_serial(jobs)
        .expect("serial run succeeds");
    flight::set_enabled(true);
    let bytes = report
        .outcomes
        .iter()
        .map(|o| o.result.as_ref().ok().map(|r| r.canonical_bytes()))
        .collect();
    (report.wall_millis, bytes)
}

/// Nanoseconds per call of `f`, amortised over `n` calls.
fn ns_per(n: u64, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / n as f64
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CUTS_QUICK").is_ok_and(|v| v == "1");
    let jobs = manifest_jobs(quick);
    let reps = if quick { 3 } else { 7 };
    println!(
        "obs overhead: {} job(s) from the bundled manifest, {reps} rep(s)/arm (quick={quick})",
        jobs.len()
    );

    // Interleave the arms so clock drift and cache warmup hit both
    // equally; take the fastest rep of each (noise only adds time).
    let (mut wall_off, mut wall_on) = (f64::INFINITY, f64::INFINITY);
    let (mut bytes_off, mut bytes_on) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        let (w, b) = replay(&jobs, false);
        wall_off = wall_off.min(w);
        bytes_off = b;
        let (w, b) = replay(&jobs, true);
        wall_on = wall_on.min(w);
        bytes_on = b;
    }
    assert_eq!(
        bytes_off, bytes_on,
        "telemetry must not change any job's result"
    );
    let overhead_pct = 100.0 * (wall_on - wall_off) / wall_off;
    println!("  telemetry off  {wall_off:>9.3} ms wall (min of {reps})");
    println!("  telemetry on   {wall_on:>9.3} ms wall (min of {reps})");
    println!("  overhead       {overhead_pct:>9.2} %  (budget 5%)");

    // Per-instrument cost: one record on the hot path.
    let n: u64 = if quick { 200_000 } else { 1_000_000 };
    let reg = Registry::enabled();
    let hist = reg.histogram("bench_hist_ns", &[("arm", "on")], "microbench");
    let hist_ns = ns_per(n, |i| hist.record(i));
    let counter = reg.counter("bench_counter_ns", &[("arm", "on")], "microbench");
    let counter_ns = ns_per(n, |_| counter.inc());
    let off = Registry::disabled();
    let dhist = off.histogram("bench_hist_ns", &[("arm", "off")], "microbench");
    let disabled_ns = ns_per(n, |i| dhist.record(i));
    let flight_ns = ns_per(n, |i| flight::record(FlightCode::Heartbeat, i, 0));
    flight::set_enabled(true);
    println!("  hist.record     {hist_ns:>8.1} ns   counter.inc {counter_ns:>8.1} ns");
    println!("  disabled path   {disabled_ns:>8.1} ns   flight.record {flight_ns:>8.1} ns");

    let out = Json::obj([
        ("bench", Json::Str("obs".into())),
        ("quick", Json::U64(quick as u64)),
        ("jobs", Json::U64(jobs.len() as u64)),
        ("reps", Json::U64(reps as u64)),
        ("wall_off_ms", Json::F64(wall_off)),
        ("wall_on_ms", Json::F64(wall_on)),
        ("overhead_pct", Json::F64(overhead_pct)),
        ("overhead_budget_pct", Json::F64(5.0)),
        ("identical_results", Json::U64(1)),
        ("hist_record_ns", Json::F64(hist_ns)),
        ("counter_inc_ns", Json::F64(counter_ns)),
        ("disabled_record_ns", Json::F64(disabled_ns)),
        ("flight_record_ns", Json::F64(flight_ns)),
    ]);
    std::fs::write("BENCH_obs.json", out.render()).expect("write BENCH_obs.json");
    println!("  wrote BENCH_obs.json");

    assert!(
        overhead_pct <= 5.0,
        "telemetry overhead {overhead_pct:.2}% exceeds the 5% budget \
         ({wall_off:.3} ms off vs {wall_on:.3} ms on)"
    );
}
