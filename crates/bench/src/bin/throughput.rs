//! Multi-query serving throughput: the bundled job manifest replayed
//! through a serial loop and through [`cuts_core::sched::Scheduler`] at
//! 1, 2, and 4 lanes on one simulated device, with per-job results
//! verified byte-identical across all runs. Emits `BENCH_throughput.json`.
//! Absolute jobs/s is the headline number; the lane-speedup *ratio* is
//! advisory only — arena chaining made serial execution so cheap that
//! wall time is dominated by job-arrival pacing, which lanes can only
//! partially overlap, so the ratio sits well below the pre-arena ~3.5×.
//!
//! A second section replays the same stream through the multi-rank
//! [`cuts_core::serve::ServeTier`] at 1, 2, and 4 ranks (one lane each,
//! so the sweep isolates rank scaling), at a higher pacing factor so
//! simulated device time dominates host compute even on a single-core
//! runner — the regime a real multi-GPU deployment lives in. Unlike the
//! lane ratio, rank scaling is **gated**: the stream's makespan must
//! land within 30% of the scheduling lower bound
//! `max(total work / ranks, longest single job)`, or the bench aborts.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin throughput -- --quick
//! ```
//!
//! `--quick` (equivalently `CUTS_QUICK=1`) halves the job stream so the
//! CI smoke step finishes in under a second.

use cuts_core::prelude::*;
use cuts_core::sched::parse_manifest;
use cuts_obs::{Json, ToJson};

/// Host-seconds of simulated work per simulated millisecond; high enough
/// that overlapping waits (not single-core host compute) dominate, as on
/// a real accelerator.
const PACING: f64 = 40.0;

/// Pacing for the multi-rank sweep: high enough that paced device time
/// dwarfs the host-side planning/estimation work, so rank scaling is
/// measurable even on a single-core CI runner.
const PACING_RANKS: f64 = 800.0;

fn manifest_jobs(quick: bool) -> Vec<Job> {
    let text = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../manifests/serve_demo.jobs"
    ));
    let mut jobs = parse_manifest(text).expect("bundled manifest parses");
    if quick {
        jobs.truncate(jobs.len() / 2);
    }
    jobs
}

fn scheduler_for(lanes: usize) -> Scheduler {
    Scheduler::builder()
        .lanes(lanes)
        .pacing(PACING)
        .build()
        .expect("valid scheduler config")
}

fn verify_identical(serial: &[JobOutcome], sched: &[JobOutcome], lanes: usize) {
    assert_eq!(serial.len(), sched.len());
    for (a, b) in serial.iter().zip(sched) {
        let same = match (&a.result, &b.result) {
            (Ok(x), Ok(y)) => x.canonical_bytes() == y.canonical_bytes(),
            (Err(_), Err(_)) => true,
            _ => false,
        };
        assert!(
            same,
            "job {:?} diverged from serial at {lanes} lane(s)",
            a.id
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CUTS_QUICK").is_ok_and(|v| v == "1");
    let jobs = manifest_jobs(quick);
    println!(
        "throughput: {} job(s) from the bundled manifest (quick={quick}, pacing={PACING})",
        jobs.len()
    );

    let serial = scheduler_for(1)
        .run_serial(&jobs)
        .expect("serial run succeeds");
    println!(
        "  serial     {:>8.2} jobs/s  ({:.1} ms wall)",
        serial.jobs_per_sec(),
        serial.wall_millis
    );

    let mut runs: Vec<Json> = Vec::new();
    let mut speedup_4 = 0.0;
    for lanes in [1usize, 2, 4] {
        let scheduler = scheduler_for(lanes);
        let report = scheduler
            .run(|h| {
                for job in jobs.iter().cloned() {
                    h.submit_wait(job);
                }
                Ok(())
            })
            .expect("scheduled run succeeds");
        verify_identical(&serial.outcomes, &report.outcomes, lanes);
        let speedup = report.jobs_per_sec() / serial.jobs_per_sec();
        if lanes == 4 {
            speedup_4 = speedup;
        }
        println!(
            "  {lanes} lane(s)  {:>8.2} jobs/s  ({:.1} ms wall)  speedup {speedup:.2}x  p50 {:.1} ms  p99 {:.1} ms",
            report.jobs_per_sec(),
            report.wall_millis,
            report.latency_percentile(50.0).unwrap_or(0.0),
            report.latency_percentile(99.0).unwrap_or(0.0),
        );
        let mut entry = report.to_json();
        entry.set("lanes", Json::U64(lanes as u64));
        entry.set("speedup_vs_serial", Json::F64(speedup));
        runs.push(entry);
    }

    // Multi-rank serving tier: the same stream routed across simulated
    // ranks, one lane each, so the sweep measures rank scaling alone.
    // The ideal makespan is the classic scheduling lower bound —
    // `max(total work / ranks, longest single job)`, taken from the
    // 1-rank run's own per-job execution times — because no router can
    // split one job across ranks. Rank scaling is gated: placement plus
    // idle-lane migration must land within 30% of that bound.
    const SCALING_GATE: f64 = 0.7;
    let mut rank_runs: Vec<Json> = Vec::new();
    let mut min_eff = f64::INFINITY;
    let mut total_exec = 0.0f64;
    let mut longest_exec = 0.0f64;
    for ranks in [1usize, 2, 4] {
        let tier = ServeTier::new(
            ServeConfig::builder()
                .ranks(ranks)
                .lanes(1)
                .pacing(PACING_RANKS)
                .build()
                .expect("valid serve config"),
        );
        let report = tier.run_stream(&jobs).expect("serve run succeeds");
        verify_identical(&serial.outcomes, &report.outcomes, ranks);
        if ranks == 1 {
            total_exec = report.outcomes.iter().map(|o| o.exec_millis).sum();
            longest_exec = report
                .outcomes
                .iter()
                .map(|o| o.exec_millis)
                .fold(0.0, f64::max);
        }
        let ideal_wall = (total_exec / ranks as f64).max(longest_exec);
        let eff = ideal_wall / report.wall_millis.max(f64::MIN_POSITIVE);
        if ranks > 1 {
            min_eff = min_eff.min(eff);
        }
        println!(
            "  {ranks} rank(s)  {:>8.2} jobs/s  ({:.1} ms wall vs {:.1} ideal, {:.0}%)  {} migrated",
            report.jobs_per_sec(),
            report.wall_millis,
            ideal_wall,
            100.0 * eff,
            report.stats.migrated
        );
        let mut entry = report.to_json();
        entry.set("ranks", Json::U64(ranks as u64));
        entry.set("ideal_wall_millis", Json::F64(ideal_wall));
        entry.set("scaling_efficiency", Json::F64(eff));
        rank_runs.push(entry);
    }
    assert!(
        min_eff >= SCALING_GATE,
        "rank scaling below the gate: {:.0}% of ideal < {:.0}%",
        100.0 * min_eff,
        100.0 * SCALING_GATE
    );

    let out = Json::obj([
        ("bench", Json::Str("throughput".into())),
        ("quick", Json::U64(quick as u64)),
        ("jobs", Json::U64(jobs.len() as u64)),
        ("pacing", Json::F64(PACING)),
        ("devices", Json::U64(1)),
        ("serial", serial.to_json()),
        ("runs", Json::arr(runs)),
        ("speedup_4_lanes", Json::F64(speedup_4)),
        ("serve_ranks", Json::arr(rank_runs)),
        ("rank_scaling_efficiency", Json::F64(min_eff)),
        ("rank_scaling_gate", Json::F64(SCALING_GATE)),
        ("identical_to_serial", Json::U64(1)),
    ]);
    std::fs::write("BENCH_throughput.json", out.render()).expect("write BENCH_throughput.json");
    println!(
        "  wrote BENCH_throughput.json (4-lane speedup {speedup_4:.2}x, rank scaling {:.0}% of ideal)",
        100.0 * min_eff
    );
}
