//! Multi-query serving throughput: the bundled job manifest replayed
//! through a serial loop and through [`cuts_core::sched::Scheduler`] at
//! 1, 2, and 4 lanes on one simulated device, with per-job results
//! verified byte-identical across all runs. Emits `BENCH_throughput.json`.
//! Absolute jobs/s is the headline number; the lane-speedup *ratio* is
//! advisory only — arena chaining made serial execution so cheap that
//! wall time is dominated by job-arrival pacing, which lanes can only
//! partially overlap, so the ratio sits well below the pre-arena ~3.5×.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin throughput -- --quick
//! ```
//!
//! `--quick` (equivalently `CUTS_QUICK=1`) halves the job stream so the
//! CI smoke step finishes in under a second.

use cuts_core::prelude::*;
use cuts_core::sched::parse_manifest;
use cuts_obs::{Json, ToJson};

/// Host-seconds of simulated work per simulated millisecond; high enough
/// that overlapping waits (not single-core host compute) dominate, as on
/// a real accelerator.
const PACING: f64 = 40.0;

fn manifest_jobs(quick: bool) -> Vec<Job> {
    let text = include_str!(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../manifests/serve_demo.jobs"
    ));
    let mut jobs = parse_manifest(text).expect("bundled manifest parses");
    if quick {
        jobs.truncate(jobs.len() / 2);
    }
    jobs
}

fn scheduler_for(lanes: usize) -> Scheduler {
    Scheduler::builder()
        .lanes(lanes)
        .pacing(PACING)
        .build()
        .expect("valid scheduler config")
}

fn verify_identical(serial: &SchedReport, sched: &SchedReport, lanes: usize) {
    assert_eq!(serial.outcomes.len(), sched.outcomes.len());
    for (a, b) in serial.outcomes.iter().zip(&sched.outcomes) {
        let same = match (&a.result, &b.result) {
            (Ok(x), Ok(y)) => x.canonical_bytes() == y.canonical_bytes(),
            (Err(_), Err(_)) => true,
            _ => false,
        };
        assert!(
            same,
            "job {:?} diverged from serial at {lanes} lane(s)",
            a.id
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("CUTS_QUICK").is_ok_and(|v| v == "1");
    let jobs = manifest_jobs(quick);
    println!(
        "throughput: {} job(s) from the bundled manifest (quick={quick}, pacing={PACING})",
        jobs.len()
    );

    let serial = scheduler_for(1)
        .run_serial(&jobs)
        .expect("serial run succeeds");
    println!(
        "  serial     {:>8.2} jobs/s  ({:.1} ms wall)",
        serial.jobs_per_sec(),
        serial.wall_millis
    );

    let mut runs: Vec<Json> = Vec::new();
    let mut speedup_4 = 0.0;
    for lanes in [1usize, 2, 4] {
        let scheduler = scheduler_for(lanes);
        let report = scheduler
            .run(|h| {
                for job in jobs.iter().cloned() {
                    h.submit_wait(job);
                }
                Ok(())
            })
            .expect("scheduled run succeeds");
        verify_identical(&serial, &report, lanes);
        let speedup = report.jobs_per_sec() / serial.jobs_per_sec();
        if lanes == 4 {
            speedup_4 = speedup;
        }
        println!(
            "  {lanes} lane(s)  {:>8.2} jobs/s  ({:.1} ms wall)  speedup {speedup:.2}x  p50 {:.1} ms  p99 {:.1} ms",
            report.jobs_per_sec(),
            report.wall_millis,
            report.latency_percentile(50.0).unwrap_or(0.0),
            report.latency_percentile(99.0).unwrap_or(0.0),
        );
        let mut entry = report.to_json();
        entry.set("lanes", Json::U64(lanes as u64));
        entry.set("speedup_vs_serial", Json::F64(speedup));
        runs.push(entry);
    }

    let out = Json::obj([
        ("bench", Json::Str("throughput".into())),
        ("quick", Json::U64(quick as u64)),
        ("jobs", Json::U64(jobs.len() as u64)),
        ("pacing", Json::F64(PACING)),
        ("devices", Json::U64(1)),
        ("serial", serial.to_json()),
        ("runs", Json::arr(runs)),
        ("speedup_4_lanes", Json::F64(speedup_4)),
        ("identical_to_serial", Json::U64(1)),
    ]);
    std::fs::write("BENCH_throughput.json", out.render()).expect("write BENCH_throughput.json");
    println!("  wrote BENCH_throughput.json (4-lane speedup {speedup_4:.2}x)");
}
