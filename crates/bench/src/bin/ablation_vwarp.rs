//! Ablation 4 (§4.1.2): virtual-warp sizing. Full 32-wide warps idle most
//! lanes on low-degree graphs (the GPSM/GSI pathology); the single-bin
//! average-degree policy recovers the wasted slots.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin ablation_vwarp
//! ```

use cuts_bench::{scale_from_env, Machine};
use cuts_core::{CutsEngine, EngineConfig, VirtualWarpPolicy};
use cuts_gpu_sim::Device;
use cuts_graph::generators::clique;
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    println!("Ablation: virtual warp width (query K4, scale {scale:?})\n");
    println!(
        "{:<12} {:>8} | {:>16} {:>16} {:>12}",
        "dataset", "policy", "instructions", "divergences", "sim ms"
    );
    for ds in [Dataset::RoadNetPA, Dataset::RoadNetCA, Dataset::Enron] {
        let data = ds.generate(scale);
        let policies: [(&str, VirtualWarpPolicy); 4] = [
            ("auto", VirtualWarpPolicy::AvgDegree),
            ("w=1", VirtualWarpPolicy::Fixed(1)),
            ("w=8", VirtualWarpPolicy::Fixed(8)),
            ("w=32", VirtualWarpPolicy::Fixed(32)),
        ];
        for (label, p) in policies {
            let device = Device::new(Machine::V100.device_config(scale));
            let engine =
                CutsEngine::with_config(&device, EngineConfig::default().with_virtual_warp(p));
            match engine.run(&data, &clique(4)) {
                Ok(r) => println!(
                    "{:<12} {:>8} | {:>16} {:>16} {:>12.3}",
                    ds.name(),
                    label,
                    r.counters.instructions,
                    r.counters.divergent_branches,
                    r.sim_millis
                ),
                Err(e) => println!("{:<12} {:>8} | failed: {e}", ds.name(), label),
            }
        }
        println!();
    }
    println!("expected: w=32 inflates instructions via masked-lane idling on the");
    println!("road networks (avg degree < 3); auto matches the best fixed width.");
}
