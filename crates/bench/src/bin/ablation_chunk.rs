//! Ablation 6 (§4.1.2): hybrid BFS-DFS chunk size. The paper found 512
//! empirically best: small chunks fit bigger instances but starve the
//! device of parallel work; big chunks reintroduce the memory wall.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin ablation_chunk
//! ```

use cuts_bench::{scale_from_env, Machine};
use cuts_core::{CutsEngine, EngineConfig};
use cuts_gpu_sim::Device;
use cuts_graph::generators::clique;
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    let data = Dataset::Gowalla.generate(scale);
    // Constrain memory so chunking actually engages.
    let base = Machine::V100.device_config(scale);
    let constrained = base
        .clone()
        .with_global_mem_words(base.global_mem_words / 1024);
    println!("Ablation: chunk size on gowalla-like @ {scale:?}, K5, memory/1024 => chunked mode\n");
    println!(
        "{:>8} {:>12} {:>10} {:>16} {:>12}",
        "chunk", "matches", "chunked", "kernel launches", "sim ms"
    );
    for chunk in [64usize, 128, 256, 512, 1024, 4096] {
        let device = Device::new(constrained.clone());
        let engine =
            CutsEngine::with_config(&device, EngineConfig::default().with_chunk_size(chunk));
        match engine.run(&data, &clique(5)) {
            Ok(r) => println!(
                "{:>8} {:>12} {:>10} {:>16} {:>12.3}",
                chunk, r.num_matches, r.used_chunking, r.counters.kernel_launches, r.sim_millis
            ),
            Err(e) => println!("{:>8} failed: {e}", chunk),
        }
    }
    println!("\nexpected: all sizes agree on the count; small chunks multiply kernel");
    println!("launches (fixed cost each), huge chunks risk capacity failures.");
}
