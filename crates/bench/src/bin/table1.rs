//! Table 1: storage-space comparison, naive flat paths vs the cuTS trie,
//! on the enron dataset with a fully-connected 5-vertex query.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin table1
//! CUTS_SCALE=small cargo run -p cuts-bench --release --bin table1
//! ```

use cuts_bench::{scale_from_env, Machine};
use cuts_core::CutsEngine;
use cuts_gpu_sim::Device;
use cuts_graph::generators::clique;
use cuts_graph::Dataset;
use cuts_trie::space::LevelCounts;

fn main() {
    let scale = scale_from_env();
    let data = Dataset::Enron.generate(scale);
    let query = clique(5);
    println!(
        "Table 1 — storage comparison, enron-like @ {scale:?} ({} vertices, {} arcs), 5-clique query\n",
        data.num_vertices(),
        data.num_edges()
    );

    let device = Device::new(Machine::V100.device_config(scale));
    let result = CutsEngine::new(&device)
        .run(&data, &query)
        .expect("table1 run failed");
    let counts = LevelCounts(result.level_counts.clone());

    println!(
        "{:>5} {:>14} {:>16} {:>14} {:>14} {:>12}",
        "depth", "paths", "naive (words)", "cuts (words)", "csf (words)", "ratio"
    );
    for row in counts.report() {
        println!(
            "{:>5} {:>14} {:>16} {:>14} {:>14} {:>12.6}",
            row.depth,
            row.paths,
            row.naive_words,
            row.cuts_words,
            row.csf_words,
            row.compression_ratio
        );
    }

    println!("\nPaper's Table 1 (full-scale enron) for comparison:");
    println!("depth  naive             ours            ratio");
    println!("1      16514             33028           0.5");
    println!("2      631318            647832          0.974509");
    println!("3      13485244          9217116         1.463065");
    println!("4      237996028         121472508       1.959258");
    println!("5      3723609628        1515717948      2.456664");
    println!("\nExpected shape: ratio < 1 at depth 1-2, grows monotonically past 1 by depth 3+.");
}
