//! Ablation 3 (§4.1.3): intersection micro-kernel choice — always-c,
//! always-p, always-bitmap, and the plan-time auto policy cuTS ships.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin ablation_intersect
//! ```

use cuts_bench::{scale_from_env, Machine};
use cuts_core::{CutsEngine, EngineConfig, IntersectStrategy};
use cuts_gpu_sim::Device;
use cuts_graph::generators::{clique, cycle};
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    println!("Ablation: intersection strategy (scale {scale:?})\n");
    println!(
        "{:<12} {:<6} {:>14} {:>14} {:>14} {:>14} | {:>9} {:>9} {:>9} {:>9}",
        "dataset",
        "query",
        "c-only dram",
        "p-only dram",
        "bitmap dram",
        "auto dram",
        "c ms",
        "p ms",
        "b ms",
        "auto ms"
    );

    for ds in [Dataset::Enron, Dataset::Gowalla, Dataset::RoadNetPA] {
        let data = ds.generate(scale);
        for (qname, q) in [("K4", clique(4)), ("C5", cycle(5))] {
            let mut dram = Vec::new();
            let mut ms = Vec::new();
            for strat in [
                IntersectStrategy::CIntersection,
                IntersectStrategy::PIntersection,
                IntersectStrategy::Bitmap,
                IntersectStrategy::Auto,
            ] {
                let device = Device::new(Machine::V100.device_config(scale));
                let engine =
                    CutsEngine::with_config(&device, EngineConfig::default().with_intersect(strat));
                match engine.run(&data, &q) {
                    Ok(r) => {
                        dram.push(format!("{}", r.counters.dram_total()));
                        ms.push(format!("{:.3}", r.sim_millis));
                    }
                    Err(_) => {
                        dram.push("-".into());
                        ms.push("-".into());
                    }
                }
            }
            println!(
                "{:<12} {:<6} {:>14} {:>14} {:>14} {:>14} | {:>9} {:>9} {:>9} {:>9}",
                ds.name(),
                qname,
                dram[0],
                dram[1],
                dram[2],
                dram[3],
                ms[0],
                ms[1],
                ms[2],
                ms[3]
            );
        }
    }
    println!("\nexpected: auto tracks the best fixed arm per dataset; p wins when the");
    println!("running buffer is small relative to the other adjacency lists.");
}
