//! Table 2: properties of the data graphs — paper values next to the
//! generated stand-ins at the selected scale.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin table2
//! ```

use cuts_bench::scale_from_env;
use cuts_graph::stats::stats;
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    println!("Table 2 — data graph properties (stand-ins generated @ {scale:?})\n");
    println!(
        "{:<12} {:>12} {:>12} | {:>10} {:>10} {:>8} {:>8} {:>8}",
        "network", "V (paper)", "E (paper)", "V (gen)", "E (gen)", "max-deg", "avg-deg", "p99-deg"
    );
    for ds in Dataset::ALL {
        let g = ds.generate(scale);
        let s = stats(&g);
        println!(
            "{:<12} {:>12} {:>12} | {:>10} {:>10} {:>8} {:>8.2} {:>8}",
            ds.name(),
            ds.paper_vertices(),
            ds.paper_edges(),
            s.vertices,
            s.arcs,
            s.max_out_degree,
            s.avg_out_degree,
            s.p99_out_degree
        );
    }
    println!("\nSkewed (social/communication) stand-ins keep the heavy tail; road");
    println!("networks stay near-regular and low-degree — the property split that");
    println!("drives Table 3's behaviour.");
}
