//! Figure 2(C): path-count and storage growth for the chain query on the
//! 4×4 mesh — the worked example motivating the trie.
//!
//! The figure's table (16 / 48 / 96 / 192 candidates) is an illustration
//! assuming a uniform branching factor of 2; this binary prints both the
//! illustration and the exactly-measured counts from the engine (which
//! enforce the degree filter and injectivity).
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin fig2c
//! ```

use cuts_core::CutsEngine;
use cuts_gpu_sim::{Device, DeviceConfig};
use cuts_graph::generators::{chain, mesh2d};

fn main() {
    let data = mesh2d(4, 4);
    let query = chain(4);
    let device = Device::new(DeviceConfig::test_small());
    let r = CutsEngine::new(&device)
        .run(&data, &query)
        .expect("fig2c run failed");

    println!("Figure 2(C) — 4x4 mesh data graph, 4-vertex chain query\n");
    println!(
        "{:>6} {:>22} {:>20} {:>24}",
        "depth", "candidates (measured)", "naive words (|P|*l)", "figure's illustration"
    );
    let illustration = [(16u64, 16u64), (48, 96), (96, 288), (192, 768)];
    for (l, &paths) in r.level_counts.iter().enumerate() {
        let naive = paths * (l as u64 + 1);
        let (ip, iw) = illustration[l];
        println!(
            "{:>6} {:>22} {:>20} {:>14} / {:>7}",
            l + 1,
            paths,
            naive,
            ip,
            iw
        );
    }
    println!("\ntotal matches: {}", r.num_matches);
    println!(
        "trie words: {}   naive cumulative words: {}",
        r.cuts_words(),
        r.naive_words()
    );
}
