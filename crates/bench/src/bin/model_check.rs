//! §5 model validation: fit the complexity model's σ from a measured run
//! and compare its per-depth path-count predictions against measurements
//! across datasets and query depths.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin model_check
//! ```

use cuts_bench::{scale_from_env, Machine};
use cuts_core::complexity::ComplexityModel;
use cuts_core::CutsEngine;
use cuts_gpu_sim::Device;
use cuts_graph::generators::clique;
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    println!("§5 complexity-model validation (scale {scale:?})\n");
    println!(
        "{:<12} {:<6} {:>8} {:>9} | {:>14} {:>14} {:>8}",
        "dataset", "query", "δ", "σ (fit)", "paths measured", "paths model", "ratio"
    );
    for ds in [Dataset::Enron, Dataset::Gowalla, Dataset::RoadNetPA] {
        let data = ds.generate(scale);
        for k in [3usize, 4, 5] {
            let device = Device::new(Machine::V100.device_config(scale));
            let query = clique(k);
            let Ok(r) = CutsEngine::new(&device).run(&data, &query) else {
                println!("{:<12} K{k}: failed", ds.name());
                continue;
            };
            let delta = data.max_out_degree() as f64;
            let sigma = ComplexityModel::fit_sigma(&r.level_counts, delta);
            let model = ComplexityModel {
                data_vertices: data.num_vertices() as f64,
                query_vertices: k,
                max_degree: delta,
                sigma,
            };
            let p1 = r.level_counts[0] as f64;
            let measured: f64 = r.level_counts.iter().map(|&c| c as f64).sum();
            let predicted: f64 = (1..=k).map(|l| model.paths_at_depth_from(p1, l)).sum();
            println!(
                "{:<12} K{:<5} {:>8} {:>9.4} | {:>14.0} {:>14.0} {:>8.2}",
                ds.name(),
                k,
                delta,
                sigma,
                measured,
                predicted,
                predicted / measured
            );
        }
    }
    println!("\nratio ≈ 1 means the geometric model of Eq. 1-2 captures the growth;");
    println!("the fit σ quantifies per-level pruning (degree filter + injectivity).");
}
