//! Arena chain-growth bench: build a trie-shaped pair table past its
//! initial capacity under two growth disciplines. The **copy** baseline
//! is the pre-arena pool behaviour — on overflow, allocate a
//! doubled-capacity table from the device allocator and copy every
//! committed entry across. The **chain** path is the arena discipline —
//! on overflow, append fresh slabs to the chain (`grow_to`), touching
//! nothing already written. Same entries in, same entries out; the
//! headline number is the geomean copy/chain build-time ratio and the PR
//! gate is ≥ 1.15×. Emits `BENCH_arena.json`.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin arena -- --quick
//! ```
//!
//! `--quick` (equivalently `CUTS_QUICK=1`) keeps only the first cases so
//! the CI smoke step stays fast. The JSON also carries
//! `warm_sched_alloc_delta`: device-allocator calls made by a warmed-up
//! scheduler stream, asserted to be exactly zero — the CI zero-alloc
//! gate reads this field.

use std::time::Instant;

use cuts_bench::{geomean, quick_from_env};
use cuts_core::prelude::*;
use cuts_core::sched::Job;
use cuts_gpu_sim::{Arena, ClassSpec, Device, DeviceConfig};
use cuts_obs::Json;
use cuts_trie::PairTable;

struct Case {
    name: &'static str,
    /// Entries the table starts with (the under-estimate).
    start: usize,
    /// Entries the build actually commits.
    total: usize,
    /// Entries appended per reservation (a frontier chunk).
    batch: usize,
}

fn cases(quick: bool) -> Vec<Case> {
    let mut v = vec![
        Case {
            name: "grow-1k-to-64k",
            start: 1 << 10,
            total: 1 << 16,
            batch: 509,
        },
        Case {
            name: "grow-4k-to-256k",
            start: 1 << 12,
            total: 1 << 18,
            batch: 1021,
        },
    ];
    if !quick {
        v.extend([
            Case {
                name: "grow-1k-to-256k",
                start: 1 << 10,
                total: 1 << 18,
                batch: 773,
            },
            Case {
                name: "grow-16k-to-512k",
                start: 1 << 14,
                total: 1 << 19,
                batch: 2039,
            },
        ]);
    }
    v
}

fn device() -> Device {
    Device::new(DeviceConfig::test_small().with_global_mem_words(1 << 24))
}

/// Appends `n` synthetic frontier entries starting at logical index
/// `base` through an already-successful reservation.
fn fill(r: &cuts_trie::PairRange<'_>, base: usize, n: usize) {
    for k in 0..n {
        let v = (base + k) as u32;
        r.write(k, v ^ 0x5555, v);
    }
}

/// Pool/copy discipline: overflow allocates a doubled table from the
/// device allocator and copies every committed entry. Returns
/// `(entries_copied, build_ms)`.
fn build_with_copies(device: &Device, c: &Case) -> (u64, f64) {
    let start = Instant::now();
    let mut table = PairTable::on_device(device, c.start).expect("baseline alloc");
    let mut written = 0usize;
    let mut copied = 0u64;
    while written < c.total {
        let n = c.batch.min(c.total - written);
        let ok = match table.reserve(n) {
            Ok(r) => {
                fill(&r, written, n);
                true
            }
            Err(_) => false,
        };
        if ok {
            written += n;
            continue;
        }
        let bigger_cap = (table.capacity() * 2).max(written + n);
        let bigger = PairTable::on_device(device, bigger_cap).expect("baseline regrow");
        {
            let r = bigger.reserve(written).expect("copy fits the new table");
            for i in 0..written {
                r.write(i, table.parent(i), table.candidate(i));
            }
        }
        copied += written as u64;
        table = bigger;
    }
    assert_eq!(table.len(), c.total);
    (copied, start.elapsed().as_secs_f64() * 1e3)
}

/// Arena chain discipline: overflow appends slabs; committed entries are
/// never touched. Returns `(chain_grows, build_ms)`; the carve is timed
/// too, so the chain pays its full setup cost here.
fn build_with_chain(device: &Device, c: &Case) -> (u64, f64) {
    let start = Instant::now();
    let slabs = 2 * (c.total.div_ceil(c.start) + 1);
    let arena = Arena::new(
        device,
        &[ClassSpec {
            slab_words: c.start,
            slabs,
        }],
    )
    .expect("carve fits the device");
    let table = PairTable::chained_on_arena(&arena, 0, c.start, c.total).expect("chain start");
    let mut written = 0usize;
    let mut grows = 0u64;
    while written < c.total {
        let n = c.batch.min(c.total - written);
        match table.reserve(n) {
            Ok(r) => {
                fill(&r, written, n);
                written += n;
            }
            Err(_) => {
                let target = (table.capacity() * 2).max(written + n).min(c.total);
                table.grow_to(target).expect("chain growth");
                grows += 1;
            }
        }
    }
    assert_eq!(table.len(), c.total);
    assert_eq!(arena.stats().device_allocs, 1, "chain must never re-alloc");
    (grows, start.elapsed().as_secs_f64() * 1e3)
}

fn best_of(reps: usize, mut f: impl FnMut() -> (u64, f64)) -> (u64, f64) {
    let mut best = f();
    for _ in 1..reps {
        let next = f();
        assert_eq!(next.0, best.0, "repeat builds must behave identically");
        if next.1 < best.1 {
            best = next;
        }
    }
    best
}

/// Warmed-up scheduler stream: after a full warmup pass drains, a second
/// pass over the same job mix must make zero device-allocator calls.
fn warm_sched_alloc_delta() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let mesh = Arc::new(cuts_graph::generators::mesh2d(8, 8));
    let er = Arc::new(cuts_graph::generators::erdos_renyi(64, 200, 1));
    let clique3 = Arc::new(cuts_graph::generators::clique(3));
    let chain4 = Arc::new(cuts_graph::generators::chain(4));
    let jobs: Vec<Job> = vec![
        Job::new(mesh.clone(), clique3.clone()),
        Job::new(er.clone(), chain4.clone()),
        Job::new(er, clique3),
        Job::new(mesh, chain4),
    ];

    let scheduler = Scheduler::builder().lanes(2).build().unwrap();
    let carved = AtomicU64::new(0);
    scheduler
        .run(|h| {
            for job in jobs.iter().cloned() {
                h.submit_wait(job);
            }
            while h.pending() > 0 || h.inflight() > 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            carved.store(
                scheduler.devices().iter().map(|d| d.alloc_calls()).sum(),
                Ordering::SeqCst,
            );
            for _ in 0..3 {
                for job in jobs.iter().cloned() {
                    h.submit_wait(job);
                }
            }
            Ok(())
        })
        .unwrap();
    let after: u64 = scheduler.devices().iter().map(|d| d.alloc_calls()).sum();
    after - carved.load(Ordering::SeqCst)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || quick_from_env();
    let cases = cases(quick);
    println!(
        "arena: {} case(s), copy-on-growth baseline vs slab-chain growth (quick={quick})",
        cases.len()
    );
    println!(
        "{:<18} {:>10} {:>8} {:>12} {:>12} {:>8}",
        "case", "copied", "grows", "copy ms", "chain ms", "ratio"
    );

    let reps = if quick { 3 } else { 5 };
    let mut entries: Vec<Json> = Vec::new();
    let mut ratios: Vec<f64> = Vec::new();
    for c in &cases {
        let d = device();
        let (copied, copy_ms) = best_of(reps, || build_with_copies(&d, c));
        let (grows, chain_ms) = best_of(reps, || build_with_chain(&d, c));
        let ratio = copy_ms / chain_ms.max(f64::MIN_POSITIVE);
        ratios.push(ratio);
        println!(
            "{:<18} {:>10} {:>8} {:>12.3} {:>12.3} {:>7.2}x",
            c.name, copied, grows, copy_ms, chain_ms, ratio
        );
        entries.push(Json::obj([
            ("case", Json::Str(c.name.into())),
            ("entries", Json::U64(c.total as u64)),
            ("entries_copied_baseline", Json::U64(copied)),
            ("chain_grows", Json::U64(grows)),
            ("copy_ms", Json::F64(copy_ms)),
            ("chain_ms", Json::F64(chain_ms)),
            ("ratio", Json::F64(ratio)),
        ]));
    }

    let delta = warm_sched_alloc_delta();
    println!("  warm scheduler stream device-alloc delta: {delta}");

    let g = geomean(&ratios).unwrap_or(0.0);
    let out = Json::obj([
        ("bench", Json::Str("arena".into())),
        ("quick", Json::U64(quick as u64)),
        ("cases", Json::arr(entries)),
        ("geomean_copy_over_chain", Json::F64(g)),
        ("warm_sched_alloc_delta", Json::U64(delta)),
    ]);
    std::fs::write("BENCH_arena.json", out.render()).expect("write BENCH_arena.json");
    println!("  wrote BENCH_arena.json (geomean copy/chain {g:.2}x, gate >= 1.15x)");
    assert_eq!(
        delta, 0,
        "warm scheduler stream touched the device allocator"
    );
    assert!(g >= 1.15, "copy/chain ratio {g:.2}x below the 1.15x gate");
}
