//! Figure 4: distributed speedup against a single node on the three big
//! data graphs (enron, gowalla, wikiTalk) for 2 and 4 simulated nodes.
//!
//! ```sh
//! CUTS_QUICK=1 cargo run -p cuts-bench --release --bin fig4
//! ```

use cuts_bench::{quick_from_env, scale_from_env, Machine};
use cuts_dist::{run, DistConfig};
use cuts_graph::query_gen::query_set;
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    // The distributed evaluation runs on V100 nodes (§6.1).
    let device = Machine::V100.device_config(scale);
    let queries: Vec<_> = if quick_from_env() {
        query_set(4, 2)
    } else {
        query_set(5, 3)
    };

    println!("Figure 4 — speedup vs single node (V100-shaped ranks, scale {scale:?})\n");
    println!(
        "{:<10} {:<6} {:>12} {:>14} {:>10} {:>10}",
        "dataset", "query", "matches", "1-node sim-ms", "2-node", "4-node"
    );

    for ds in Dataset::BIG {
        let data = ds.generate(scale);
        for q in &queries {
            let config = DistConfig {
                device: device.clone(),
                dist_chunk: 64,
                ..Default::default()
            };
            let r1 = run(&data, &q.graph, 1, &config).expect("1-node");
            let base = r1.makespan_sim_millis();
            let mut speeds = Vec::new();
            for ranks in [2usize, 4] {
                let r = run(&data, &q.graph, ranks, &config).expect("multi-node");
                assert_eq!(r.total_matches, r1.total_matches, "count drift");
                let m = r.makespan_sim_millis();
                speeds.push(if m > 0.0 { base / m } else { f64::NAN });
            }
            println!(
                "{:<10} {:<6} {:>12} {:>14.3} {:>9.2}x {:>9.2}x",
                ds.name(),
                q.name,
                r1.total_matches,
                base,
                speeds[0],
                speeds[1]
            );
        }
    }
    println!("\npaper's shape: close to 2x on two nodes, close to 3.1x on four nodes,");
    println!("with occasional superlinear cases from better cache behaviour.");
}
