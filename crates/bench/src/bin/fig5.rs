//! Figure 5: load balance on a 4-node system with the wikiTalk dataset —
//! per-node busy times T1..T4 for a sweep of queries.
//!
//! ```sh
//! CUTS_QUICK=1 cargo run -p cuts-bench --release --bin fig5
//! ```

use cuts_bench::{quick_from_env, scale_from_env, Machine};
use cuts_dist::{run, DistConfig};
use cuts_graph::query_gen::query_set;
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    let data = Dataset::WikiTalk.generate(scale);
    let queries: Vec<_> = if quick_from_env() {
        query_set(4, 3)
    } else {
        query_set(5, 6)
    };
    // Fine job granularity: a job is the unit of donation, so the chunk
    // size bounds how well the protocol can smooth a straggler.
    let config = DistConfig {
        device: Machine::V100.device_config(scale),
        dist_chunk: 8,
        pacing: 400.0,
        ..Default::default()
    };

    println!(
        "Figure 5 — per-node busy time, wikiTalk-like @ {scale:?} ({} vertices), 4 V100 nodes\n",
        data.num_vertices()
    );
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>12}",
        "query", "T1 (ms)", "T2 (ms)", "T3 (ms)", "T4 (ms)", "balance", "donations"
    );
    for q in &queries {
        let r = run(&data, &q.graph, 4, &config).expect("fig5 run");
        let t: Vec<f64> = r.per_rank.iter().map(|m| m.busy_sim_millis).collect();
        let donations: usize = r.per_rank.iter().map(|m| m.donations_sent).sum();
        println!(
            "{:<6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>9.2} {:>12}",
            q.name,
            t[0],
            t[1],
            t[2],
            t[3],
            r.balance_ratio(),
            donations
        );
    }
    println!("\npaper's claim: \"our node to node runtime variation is very low\" —");
    println!("balance (min/max busy time) should stay close to 1.0.");
}
