//! Table 3: single-node results — GSI-style baseline vs cuTS on both
//! machine shapes, 33 queries × 6 datasets, "GSI ; cuTS" per cell with "-"
//! for failures, followed by the case counts and geomean speedups the
//! paper headlines, plus the §6 hardware-metric ratios (pass `--metrics`).
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin table3 -- --quick
//! cargo run -p cuts-bench --release --bin table3 -- --metrics
//! ```
//!
//! `--quick` (equivalently `CUTS_QUICK=1`) shrinks the sweep so the table
//! finishes in seconds; CI runs it as a smoke test.

use cuts_baseline::GsiEngine;
use cuts_bench::{cell, datasets, geomean, query_sizes, scale_from_env, Machine};
use cuts_core::CutsEngine;
use cuts_gpu_sim::{Counters, Device};
use cuts_graph::query_gen::query_set;
use cuts_graph::Graph;

struct Outcome {
    gsi_ms: Option<f64>,
    cuts_ms: Option<f64>,
    gsi_counters: Option<Counters>,
    cuts_counters: Option<Counters>,
}

fn run_case(machine: Machine, data: &Graph, query: &Graph, scale: cuts_graph::Scale) -> Outcome {
    // Fresh devices per engine: each engine gets the whole memory budget,
    // like separate processes on the real machine.
    let gsi_dev = Device::new(machine.device_config(scale));
    let gsi = GsiEngine::new(&gsi_dev).run(data, query).ok();
    let cuts_dev = Device::new(machine.device_config(scale));
    let cuts = CutsEngine::new(&cuts_dev).run(data, query).ok();
    Outcome {
        gsi_ms: gsi.as_ref().map(|r| r.sim_millis),
        cuts_ms: cuts.as_ref().map(|r| r.sim_millis),
        gsi_counters: gsi.map(|r| r.counters),
        cuts_counters: cuts.map(|r| r.counters),
    }
}

fn main() {
    let metrics = std::env::args().any(|a| a == "--metrics");
    let scale = scale_from_env();
    let dss = datasets();
    let queries: Vec<_> = query_sizes()
        .into_iter()
        .flat_map(|n| query_set(n, 11))
        .collect();
    let graphs: Vec<_> = dss.iter().map(|ds| (ds, ds.generate(scale))).collect();

    for machine in [Machine::A100, Machine::V100] {
        println!(
            "\n=== Table 3 on {} (scale {scale:?}) — cells are \"GSI ; cuTS\" in simulated ms ===\n",
            machine.name()
        );
        print!("{:<8}", "query");
        for (ds, _) in &graphs {
            print!(" {:>22}", ds.name());
        }
        println!();

        let mut gsi_ok = 0usize;
        let mut cuts_ok = 0usize;
        let mut speedups: Vec<f64> = Vec::new();
        let mut road_speedups: Vec<f64> = Vec::new();
        let mut agg_gsi = Counters::default();
        let mut agg_cuts = Counters::default();

        for q in &queries {
            print!("{:<8}", q.name);
            for (ds, g) in &graphs {
                let o = run_case(machine, g, &q.graph, scale);
                if o.gsi_ms.is_some() {
                    gsi_ok += 1;
                }
                if o.cuts_ms.is_some() {
                    cuts_ok += 1;
                }
                if let (Some(gm), Some(cm)) = (o.gsi_ms, o.cuts_ms) {
                    if cm > 0.0 {
                        let s = gm / cm;
                        speedups.push(s);
                        if ds.name().starts_with("roadNet") {
                            road_speedups.push(s);
                        }
                    }
                }
                if let (Some(gc), Some(cc)) = (o.gsi_counters, o.cuts_counters) {
                    agg_gsi += gc;
                    agg_cuts += cc;
                }
                print!(" {:>10} ; {:>9}", cell(o.gsi_ms), cell(o.cuts_ms));
            }
            println!();
        }

        let total = queries.len() * graphs.len();
        println!("\ncases completed: cuTS {cuts_ok}/{total}, GSI {gsi_ok}/{total}");
        if let Some(g) = geomean(&speedups) {
            println!(
                "geomean speedup (both-completed cases): {g:.1}x over {} cases",
                speedups.len()
            );
        }
        if let Some(g) = geomean(&road_speedups) {
            println!("geomean speedup on road networks:       {g:.1}x");
        }
        println!(
            "paper ({}): cuTS {} cases vs GSI 99; road-network geomeans {}",
            machine.name(),
            if machine == Machine::A100 { 164 } else { 154 },
            if machine == Machine::A100 {
                "329x / 430x / 407x (PA/TX/CA)"
            } else {
                "250x / 314x / 387x (PA/TX/CA)"
            }
        );

        if metrics {
            println!(
                "\n§6 hardware-metric ratios (GSI / cuTS), aggregated over both-completed cases:"
            );
            // ratio_str, not ratio + {:.1}: a zero cuTS denominator must
            // print as "inf", never format f64::INFINITY into the table.
            println!(
                "  DRAM reads {}x | DRAM writes {}x | shmem writes {}x | shmem reads {}x | atomics {}x | instructions {}x",
                Counters::ratio_str(agg_gsi.dram_reads, agg_cuts.dram_reads),
                Counters::ratio_str(agg_gsi.dram_writes, agg_cuts.dram_writes),
                Counters::ratio_str(agg_gsi.shmem_writes, agg_cuts.shmem_writes),
                Counters::ratio_str(agg_gsi.shmem_reads, agg_cuts.shmem_reads),
                Counters::ratio_str(agg_gsi.atomics, agg_cuts.atomics),
                Counters::ratio_str(agg_gsi.instructions, agg_cuts.instructions),
            );
            println!("  paper reports: up to 200x DRAM reads, 34x shmem writes, 7x shmem reads, 2x atomics, 7x instructions");
        }
    }
}
