//! Ablation 7b (§4.2): the paper's *rejected* synchronous
//! rebalance-every-level strategy versus the shipped asynchronous
//! donation protocol. The paper's objections — barrier idling and
//! per-level path copying — become measurable columns.
//!
//! ```sh
//! cargo run -p cuts-bench --release --bin ablation_sync
//! ```

use cuts_bench::{scale_from_env, Machine};
use cuts_dist::{run, run_synchronous, DistConfig};
use cuts_graph::generators::clique;
use cuts_graph::Dataset;

fn main() {
    let scale = scale_from_env();
    println!("Ablation: async donation vs synchronous rebalancing (4 nodes, scale {scale:?})\n");
    println!(
        "{:<10} {:<6} {:>12} | {:>12} {:>12} {:>11} | {:>12} {:>14}",
        "dataset",
        "query",
        "matches",
        "async mkspn",
        "sync mkspn",
        "sync idle",
        "async bytes",
        "sync moved (w)"
    );
    for ds in [Dataset::Enron, Dataset::Gowalla] {
        let data = ds.generate(scale);
        for (qname, q) in [("K3", clique(3)), ("K4", clique(4))] {
            let config = DistConfig {
                device: Machine::V100.device_config(scale),
                dist_chunk: 256,
                pacing: 50.0,
                ..Default::default()
            };
            let a = run(&data, &q, 4, &config).expect("async run");
            let s = run_synchronous(&data, &q, 4, &config).expect("sync run");
            assert_eq!(a.total_matches, s.dist.total_matches, "count drift");
            let async_bytes: u64 = a.per_rank.iter().map(|m| m.bytes_sent).sum();
            println!(
                "{:<10} {:<6} {:>12} | {:>12.3} {:>12.3} {:>11.4} | {:>12} {:>14}",
                ds.name(),
                qname,
                a.total_matches,
                a.makespan_sim_millis(),
                s.barrier_makespan_sim_millis,
                s.barrier_idle_sim_millis,
                async_bytes,
                s.rebalanced_words
            );
        }
    }
    println!("\nexpected: identical counts; the synchronous strategy redistributes");
    println!("tens of thousands of path-words every level where the async protocol");
    println!("moves (near) nothing, and pays barrier idle time on skewed levels —");
    println!("the two §4.2 objections, quantified. (Kernel-launch accounting");
    println!("differs between the two schedulers, so makespans are indicative.)");
}
