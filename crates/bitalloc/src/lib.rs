//! Lock-free bitmap slot allocation over `&[AtomicU64]`.
//!
//! This is the `no_std` core of the arena-slab memory discipline (the
//! Harmony-style idiom: fixed-capacity slabs, one bit per slab, O(1)
//! acquire/release). One `u64` word tracks 64 slots; a set bit means the
//! slot is **allocated**. [`acquire`] claims the first clear bit at or
//! after a rotating hint with a single CAS per attempt; [`release`]
//! clears a bit with one `fetch_and`. Neither takes a lock and neither
//! scans under one, so contended alloc/free stays wait-free in practice
//! (the CAS retries only when another thread touched the *same* word in
//! the same instant).
//!
//! The functions are free-standing rather than methods on an owning type
//! so callers can embed the bitmap words wherever their layout needs them
//! (the gpu-sim arena packs one bitmap per slab class).

#![cfg_attr(not(test), no_std)]
#![warn(missing_docs)]

use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Slots tracked per bitmap word.
pub const BITS_PER_WORD: usize = 64;

/// Bitmap words needed to track `slots` slots.
#[inline]
pub const fn words_for(slots: usize) -> usize {
    slots.div_ceil(BITS_PER_WORD)
}

/// Mask of the bits in word `word` that correspond to real slots (all
/// ones except possibly in the final word of a non-multiple-of-64
/// bitmap, where the tail bits are permanently unavailable).
#[inline]
pub fn usable_mask(word: usize, slots: usize) -> u64 {
    let base = word * BITS_PER_WORD;
    if base >= slots {
        return 0;
    }
    let in_word = slots - base;
    if in_word >= BITS_PER_WORD {
        u64::MAX
    } else {
        (1u64 << in_word) - 1
    }
}

/// Claims one free slot and returns its index, or `None` when all
/// `slots` slots are taken.
///
/// The scan starts at the word `hint` points to and wraps once around the
/// bitmap, so repeated acquires are amortised O(1): the hint chases the
/// allocation frontier instead of rescanning fully-occupied prefixes.
/// `bitmap` must hold at least [`words_for`]`(slots)` words.
pub fn acquire(bitmap: &[AtomicU64], slots: usize, hint: &AtomicUsize) -> Option<usize> {
    let words = words_for(slots);
    debug_assert!(bitmap.len() >= words);
    if words == 0 {
        return None;
    }
    let start = hint.load(Ordering::Relaxed) % words;
    for step in 0..words {
        let w = (start + step) % words;
        let usable = usable_mask(w, slots);
        let mut cur = bitmap[w].load(Ordering::Relaxed);
        loop {
            let free = !cur & usable;
            if free == 0 {
                break; // word full; move on
            }
            let bit = free.trailing_zeros() as usize;
            match bitmap[w].compare_exchange_weak(
                cur,
                cur | (1u64 << bit),
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    hint.store(w, Ordering::Relaxed);
                    return Some(w * BITS_PER_WORD + bit);
                }
                Err(seen) => cur = seen, // lost the race on this word; retry it
            }
        }
    }
    None
}

/// Releases slot `slot`. Returns `true` when the slot was allocated
/// (i.e. this call freed it) — a `false` return means a double free,
/// which callers should treat as a logic error.
pub fn release(bitmap: &[AtomicU64], slot: usize) -> bool {
    let w = slot / BITS_PER_WORD;
    let mask = 1u64 << (slot % BITS_PER_WORD);
    debug_assert!(w < bitmap.len());
    let prev = bitmap[w].fetch_and(!mask, Ordering::AcqRel);
    prev & mask != 0
}

/// True when `slot` is currently allocated.
pub fn is_allocated(bitmap: &[AtomicU64], slot: usize) -> bool {
    let w = slot / BITS_PER_WORD;
    let mask = 1u64 << (slot % BITS_PER_WORD);
    bitmap[w].load(Ordering::Acquire) & mask != 0
}

/// Number of allocated slots (exact only when no alloc/free is racing).
pub fn occupancy(bitmap: &[AtomicU64], slots: usize) -> usize {
    (0..words_for(slots))
        .map(|w| (bitmap[w].load(Ordering::Acquire) & usable_mask(w, slots)).count_ones() as usize)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitmap(slots: usize) -> Vec<AtomicU64> {
        (0..words_for(slots)).map(|_| AtomicU64::new(0)).collect()
    }

    #[test]
    fn acquire_release_roundtrip() {
        let b = bitmap(10);
        let hint = AtomicUsize::new(0);
        let s0 = acquire(&b, 10, &hint).unwrap();
        let s1 = acquire(&b, 10, &hint).unwrap();
        assert_ne!(s0, s1, "two acquires never grant the same slot");
        assert!(is_allocated(&b, s0));
        assert_eq!(occupancy(&b, 10), 2);
        assert!(release(&b, s0), "first free succeeds");
        assert!(!release(&b, s0), "double free is detected");
        assert_eq!(occupancy(&b, 10), 1);
    }

    #[test]
    fn exhaustion_returns_none_and_respects_tail_mask() {
        // 70 slots span two words; the second word has only 6 usable bits.
        let b = bitmap(70);
        let hint = AtomicUsize::new(0);
        let mut got: Vec<usize> = (0..70).map(|_| acquire(&b, 70, &hint).unwrap()).collect();
        assert!(acquire(&b, 70, &hint).is_none(), "all slots taken");
        got.sort_unstable();
        assert_eq!(got, (0..70).collect::<Vec<_>>());
        assert_eq!(occupancy(&b, 70), 70);
    }

    #[test]
    fn hint_skips_full_prefix() {
        let b = bitmap(128);
        let hint = AtomicUsize::new(0);
        for _ in 0..64 {
            acquire(&b, 128, &hint).unwrap();
        }
        // The hint now points at word 0 (last success there); the next
        // acquire must still find word 1.
        assert_eq!(acquire(&b, 128, &hint), Some(64));
        assert_eq!(hint.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn masks_are_exact() {
        assert_eq!(usable_mask(0, 64), u64::MAX);
        assert_eq!(usable_mask(0, 3), 0b111);
        assert_eq!(usable_mask(1, 70), 0b11_1111);
        assert_eq!(usable_mask(2, 70), 0);
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
    }

    /// The satellite stress test: hammer one bitmap from many threads
    /// with acquire/release churn and verify no double-grant, no lost
    /// free, and exact occupancy after join.
    #[test]
    fn concurrent_churn_no_double_grant_no_lost_free() {
        use std::sync::atomic::AtomicU32;

        const SLOTS: usize = 200; // non-multiple of 64: tail mask in play
        const THREADS: usize = 8;
        const ROUNDS: usize = 500;
        let b = bitmap(SLOTS);
        let hint = AtomicUsize::new(0);
        // One owner tag per slot: a double grant shows up as a non-zero
        // fetch_add, a lost free as a slot still owned after join.
        let owners: Vec<AtomicU32> = (0..SLOTS).map(|_| AtomicU32::new(0)).collect();

        std::thread::scope(|s| {
            for t in 0..THREADS {
                let (b, hint, owners) = (&b, &hint, &owners);
                s.spawn(move || {
                    let mut held: Vec<usize> = Vec::new();
                    for round in 0..ROUNDS {
                        if let Some(slot) = acquire(b, SLOTS, hint) {
                            let prev = owners[slot].fetch_add(1, Ordering::AcqRel);
                            assert_eq!(prev, 0, "slot {slot} double-granted");
                            held.push(slot);
                        }
                        // Release roughly half of what we hold, varying
                        // the order per thread and round.
                        if round % 2 == t % 2 {
                            while held.len() > 2 {
                                let slot = held.swap_remove(round % held.len());
                                let prev = owners[slot].fetch_sub(1, Ordering::AcqRel);
                                assert_eq!(prev, 1, "slot {slot} freed while unowned");
                                assert!(release(b, slot), "slot {slot} free lost");
                            }
                        }
                    }
                    for slot in held {
                        owners[slot].fetch_sub(1, Ordering::AcqRel);
                        assert!(release(b, slot));
                    }
                });
            }
        });
        assert_eq!(occupancy(&b, SLOTS), 0, "all slots returned after join");
        for (i, o) in owners.iter().enumerate() {
            assert_eq!(o.load(Ordering::Acquire), 0, "slot {i} leaked an owner");
        }
    }
}
