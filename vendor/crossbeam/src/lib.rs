//! Minimal stand-in for `crossbeam`: just the `channel` module, backed by
//! `std::sync::mpsc`. Same semantics the workspace relies on: unbounded,
//! multi-producer single-consumer, FIFO per sender, non-blocking and
//! timed receives.

/// MPSC channels with crossbeam's module layout.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvTimeoutError, SendError, TryRecvError};

    /// Sending half; cheap to clone.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends; fails only when the receiver is gone.
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            self.0.send(v)
        }
    }

    /// Receiving half.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking receive with timeout.
        pub fn recv_timeout(&self, d: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(d)
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (s, r) = mpsc::channel();
        (Sender(s), Receiver(r))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn fifo_and_timeout() {
        let (s, r) = unbounded();
        s.send(1).unwrap();
        s.clone().send(2).unwrap();
        assert_eq!(r.try_recv().unwrap(), 1);
        assert_eq!(r.recv_timeout(Duration::from_millis(10)).unwrap(), 2);
        assert!(r.try_recv().is_err());
        assert!(r.recv_timeout(Duration::from_millis(1)).is_err());
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (s, r) = unbounded();
        drop(r);
        assert!(s.send(5).is_err());
    }
}
