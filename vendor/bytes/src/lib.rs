//! Minimal stand-in for the `bytes` crate: reference-counted immutable
//! byte views ([`Bytes`]), a growable builder ([`BytesMut`]), and the
//! [`Buf`]/[`BufMut`] cursor traits — the subset the workspace's wire
//! codecs use.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// Cheaply cloneable immutable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice (copied; the real crate borrows, but the
    /// distinction is unobservable through this API).
    pub fn from_static(b: &'static [u8]) -> Self {
        Bytes::from(b.to_vec())
    }

    /// View length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-view over `range` (relative to this view), sharing storage.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let head = self.slice(0..at);
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Growable byte builder; [`BytesMut::freeze`] converts to [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(n),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { data: v.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns one little-endian `u32`.
    ///
    /// # Panics
    /// If fewer than four bytes remain (callers check `remaining` first).
    fn get_u32_le(&mut self) -> u32;

    /// Consumes and returns one little-endian `u64`.
    ///
    /// # Panics
    /// If fewer than eight bytes remain.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let raw: [u8; 4] = self[0..4].try_into().unwrap();
        self.start += 4;
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow");
        let raw: [u8; 8] = self[0..8].try_into().unwrap();
        self.start += 8;
        u64::from_le_bytes(raw)
    }
}

/// Write cursor over a growable byte buffer.
pub trait BufMut {
    /// Appends one little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends one little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a slice verbatim.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32s() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u32_le(7);
        b.put_u32_le(u32::MAX);
        let mut bytes = b.freeze();
        assert_eq!(bytes.remaining(), 8);
        assert_eq!(bytes.get_u32_le(), 7);
        assert_eq!(bytes.get_u32_le(), u32::MAX);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(&b.slice(1..3)[..], &[4, 5]);
    }

    #[test]
    fn equality_ignores_offsets() {
        let a = Bytes::from(vec![9, 9, 1, 2]).slice(2..4);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
    }
}
