//! Minimal stand-in for `rayon`: the `into_par_iter().map().reduce()`
//! shape the GPU simulator uses, executed **sequentially** on the calling
//! thread. Parallel speedup is not modelled — the simulator charges cost
//! through its own counters, so wall-clock parallelism is an
//! implementation detail; sequential execution additionally makes
//! block-order deterministic, which the fault-injection tests exploit.

/// Re-exports matching `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a "parallel" (here: sequential) iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Concrete iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts self.
    fn into_par_iter(self) -> Self::Iter;
}

/// The subset of `rayon::iter::ParallelIterator` the workspace uses.
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item;

    /// Drives the iterator, invoking `each` per item.
    fn drive<F: FnMut(Self::Item)>(self, each: F);

    /// Maps items.
    fn map<O, F: Fn(Self::Item) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Reduces with an identity constructor, left-to-right.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item,
        OP: Fn(Self::Item, Self::Item) -> Self::Item,
    {
        let mut acc = identity();
        self.drive(|item| {
            let prev = std::mem::replace(&mut acc, identity());
            acc = op(prev, item);
        });
        acc
    }

    /// Invokes `f` per item.
    fn for_each<F: FnMut(Self::Item)>(self, f: F) {
        self.drive(f);
    }
}

/// Sequential adapter over any [`Iterator`].
pub struct SeqIter<I>(I);

impl<I: Iterator> ParallelIterator for SeqIter<I> {
    type Item = I::Item;
    fn drive<F: FnMut(Self::Item)>(self, mut each: F) {
        for item in self.0 {
            each(item);
        }
    }
}

/// Mapped iterator.
pub struct Map<P, F> {
    inner: P,
    f: F,
}

impl<P: ParallelIterator, O, F: Fn(P::Item) -> O> ParallelIterator for Map<P, F> {
    type Item = O;
    fn drive<G: FnMut(Self::Item)>(self, mut each: G) {
        let f = self.f;
        self.inner.drive(|item| each(f(item)));
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = SeqIter<std::ops::Range<usize>>;
    fn into_par_iter(self) -> Self::Iter {
        SeqIter(self)
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = SeqIter<std::vec::IntoIter<T>>;
    fn into_par_iter(self) -> Self::Iter {
        SeqIter(self.into_iter())
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let sum = (0..100usize)
            .into_par_iter()
            .map(|i| i * 2)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 9900);
    }

    #[test]
    fn reduce_result_short_circuit_shape() {
        // The device launch pattern: Results folded with Result::and.
        let r: Result<(), u32> = (0..10usize)
            .into_par_iter()
            .map(|i| if i == 7 { Err(7) } else { Ok(()) })
            .reduce(|| Ok(()), |a, b| a.and(b));
        assert_eq!(r, Err(7));
    }
}
