//! Minimal stand-in for `proptest`: the `proptest!` macro, a
//! [`Strategy`](strategy::Strategy)
//! trait with `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `collection::{vec, btree_set}`, and `sample::select`.
//!
//! Differences from the real crate: cases are generated from a seed
//! derived deterministically from the test's module path and name (fully
//! reproducible, no `PROPTEST_*` env handling), and failing cases are
//! **not shrunk** — the panic message reports the case index instead.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates values of `Value` from a [`TestRng`].
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Chains a value-dependent strategy.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discards values failing `pred` (bounded retries).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                pred,
                whence,
            }
        }
    }

    /// Always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        pred: F,
        whence: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.whence)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! impl_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_inclusive_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }

    impl Strategy for std::ops::Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            loop {
                let v = rng.rng.random_range(self.start as u32..self.end as u32);
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` support for primitives.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spanning a wide magnitude range.
            let mantissa = (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
            let exp = (rng.next() % 64) as i32 - 32;
            mantissa * (2f64).powi(exp)
        }
    }

    /// Strategy over `T`'s whole domain.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Size specifications: exact (`3`), half-open (`0..10`), inclusive.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng.random_range(self.lo..=self.hi)
        }
    }

    /// `Vec<T>` strategy with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// `BTreeSet<T>` strategy; duplicates collapse, so the set may be
    /// smaller than the drawn size (matching real proptest).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Ordered set of `element` values.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling from explicit choices.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniform choice from a fixed vector.
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.rng.random_range(0..self.choices.len())].clone()
        }
    }

    /// Picks uniformly from `choices` (must be non-empty).
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select from empty vector");
        Select { choices }
    }
}

pub mod test_runner {
    //! Case configuration and the per-case RNG.

    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration (`cases` is the only honoured knob).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-case RNG (seeded from test path + case index).
    pub struct TestRng {
        pub(crate) rng: SmallRng,
    }

    impl TestRng {
        /// RNG for one case of one named test.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            // FNV-1a over the path, mixed with the case index.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                rng: SmallRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Raw 64 random bits (for `Arbitrary` impls).
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.rng.next_u64()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` alias namespace.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

/// Asserts a condition inside a property (panics with case context).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated
/// argument tuples. The per-case seed is deterministic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u32..5, f in 0.0..1.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u32..10, 0u32..10), 0..8),
            pick in prop::sample::select(vec![1usize, 2, 4]),
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|&(a, b)| a < 10 && b < 10));
            prop_assert!([1, 2, 4].contains(&pick));
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..6).prop_flat_map(|n| {
            prop::collection::vec(0..n, 1..4).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u32..1000, 0..20);
        let a: Vec<_> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case("t", c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| s.generate(&mut TestRng::for_case("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
