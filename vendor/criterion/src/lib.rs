//! Minimal stand-in for `criterion`: groups, benchmark IDs, and a
//! wall-clock timing loop. No statistics, plots, or baselines — each
//! benchmark runs a fixed warm-up plus sample loop and prints the mean
//! per-iteration time, enough to compare kernels locally and to keep the
//! `cargo bench` targets compiling and runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded, reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        for _ in 0..self.iters.min(3) {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n as u64;
        self
    }

    /// Annotates throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run_one(&mut self, id: &str, b: &mut Bencher) {
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3} Melem/s)", n as f64 / per_iter / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.3} MB/s)", n as f64 / per_iter / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {:.3} µs/iter over {} iters{rate}",
            self.name,
            per_iter * 1e6,
            b.iters
        );
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.run_one(&id.to_string(), &mut b);
        self
    }

    /// Runs one benchmark with an input handle.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.samples,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.run_one(&id.to_string(), &mut b);
        self
    }

    /// Ends the group (no-op; parity with the real API).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 20,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($bench_fn(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut runs = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 3 warm-up + 5 timed.
        assert_eq!(runs, 8);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("c", "balanced-64").to_string(),
            "c/balanced-64"
        );
    }
}
