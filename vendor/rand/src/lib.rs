//! Minimal stand-in for `rand` 0.9: a deterministic xoshiro256** PRNG
//! behind the `SmallRng` name, `SeedableRng::seed_from_u64`,
//! `Rng::random_range` over integer and float ranges, and
//! `seq::SliceRandom::shuffle`. Deliberately small; the workspace only
//! needs seeded, reproducible streams.

use std::ops::{Range, RangeInclusive};

/// Core random source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Multiply-shift bounded sampling; bias is < 2^-64, far
                // below anything observable in the simulation.
                let r = rng.next_u64() as u128;
                low.wrapping_add(((r * span) >> 64) as $t)
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: f32, high: f32) -> f32 {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                if hi < <$t>::MAX {
                    <$t>::sample_half_open(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    <$t>::sample_half_open(rng, lo - 1, hi).wrapping_add(1)
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_range_inclusive_int!(u8, u16, u32, u64, usize, i32, i64, isize);

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T {
        range.sample(self)
    }

    /// Bernoulli draw.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast PRNG (xoshiro256**), deterministic from its seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniformly permutes the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000usize),
                b.random_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..7usize);
            assert!((3..7).contains(&v));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(1..=6u32);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, orig);
    }
}
