//! Warm-start equivalence: a session restored from a snapshot must serve
//! the full graph × query matrix with results identical to cold runs,
//! while building **zero** plans (`stats().plans.misses == 0`) and never
//! re-profiling the data graph (the global `profile_builds` counter does
//! not move once the container is decoded). The snapshot travels through
//! its wire encoding — `capture → encode → decode` — so this also
//! exercises the container round trip end to end.

use std::collections::BTreeSet;

use cuts::engine::Snapshot;
use cuts::graph::datasets::{Dataset, Scale};
use cuts::graph::generators::{chain, clique, cycle, erdos_renyi, mesh2d, star};
use cuts::graph::profile::profile_builds;
use cuts::graph::Graph;
use cuts::prelude::*;
use cuts::trie::HostTrie;

/// Cyclic labels, enough classes to prune but not empty the result.
fn labels(n: usize, classes: u32) -> Vec<u32> {
    (0..n as u32).map(|v| v % classes).collect()
}

fn data_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "enron-tiny",
            Dataset::Enron.generate(Scale::Custom(1.0 / 4096.0)),
        ),
        (
            "gowalla-tiny",
            Dataset::Gowalla.generate(Scale::Custom(1.0 / 4096.0)),
        ),
        ("mesh-8x8", mesh2d(8, 8)),
        ("er-60-300", erdos_renyi(60, 300, 23)),
        ("star-hub", star(48)),
        ("clique-7", clique(7)),
        (
            "er-labeled",
            erdos_renyi(50, 220, 7).with_labels(labels(50, 3)),
        ),
    ]
}

fn queries(labeled: bool) -> Vec<(&'static str, Graph)> {
    let mut qs = vec![
        ("triangle", clique(3)),
        ("k4", clique(4)),
        ("chain4", chain(4)),
        ("cycle4", cycle(4)),
    ];
    if labeled {
        qs = qs
            .into_iter()
            .map(|(n, q)| {
                let l = labels(q.num_vertices(), 3);
                (n, q.with_labels(l))
            })
            .collect();
    }
    qs
}

#[test]
fn warm_sessions_match_cold_runs_with_zero_plan_builds() {
    for (dname, data) in data_graphs() {
        let qs = queries(data.is_labeled());

        // Cold phase: one fresh session plans and runs every query.
        let device = Device::new(DeviceConfig::test_small());
        let cold = ExecSession::new(&device, EngineConfig::default());
        let want: Vec<MatchResult> = qs
            .iter()
            .map(|(_, q)| cold.run(&data, q).unwrap())
            .collect();
        assert_eq!(
            cold.stats().plans.misses,
            qs.len() as u64,
            "{dname}: every cold query builds its plan"
        );

        // Persist, then restore through the wire format.
        let snap = Snapshot::capture(&data, &cold);
        assert_eq!(snap.plans().len(), qs.len(), "{dname}: all plans captured");
        let bytes = snap.encode();
        let restored = Snapshot::decode(&bytes).unwrap();

        // Warm phase: the decoded graph already carries its profile and
        // the seeded cache already holds every plan.
        let builds_before = profile_builds();
        let warm_device = Device::new(DeviceConfig::test_small());
        let warm = ExecSession::from_snapshot(&warm_device, EngineConfig::default(), &restored);
        for ((qname, q), want) in qs.iter().zip(&want) {
            let got = warm.run(restored.graph(), q).unwrap();
            assert_eq!(
                got.num_matches, want.num_matches,
                "{dname}/{qname}: warm count must equal cold count"
            );
            assert_eq!(
                got.level_counts, want.level_counts,
                "{dname}/{qname}: warm trie levels must equal cold"
            );
        }
        let s = warm.stats();
        assert_eq!(s.plans.misses, 0, "{dname}: warm session built a plan");
        assert_eq!(
            s.plans.hits,
            qs.len() as u64,
            "{dname}: every warm query must hit the seeded cache"
        );
        assert_eq!(
            profile_builds(),
            builds_before,
            "{dname}: warm session re-profiled the data graph"
        );
    }
}

#[test]
fn idle_warm_session_stats_render_without_lookups() {
    let data = mesh2d(4, 4);
    let device = Device::new(DeviceConfig::test_small());
    let cold = ExecSession::new(&device, EngineConfig::default());
    cold.run(&data, &clique(3)).unwrap();
    let snap = Snapshot::capture(&data, &cold);

    // A freshly restored session has seeded plans but zero lookups:
    // every ratio and rendering path must cope with 0 hits / 0 builds.
    let warm_device = Device::new(DeviceConfig::test_small());
    let warm = ExecSession::from_snapshot(&warm_device, EngineConfig::default(), &snap);
    let s = warm.stats();
    assert_eq!(s.plans.hits + s.plans.misses, 0);
    assert_eq!(s.plans.hit_ratio(), 0.0, "0/0 lookups must not be NaN");
    assert_eq!(s.plans.len, 1, "the captured plan is resident");
    let rendered = cuts_obs::ToJson::to_json(&s).render();
    cuts_obs::Json::parse(&rendered).expect("stats render as valid JSON with zero lookups");
}

/// The donation-resume path (`run_seeded`) must work on a session that
/// never planned anything itself: the plan comes from the
/// snapshot-seeded cache.
#[test]
fn run_seeded_on_a_warm_session_builds_no_plans() {
    let data = mesh2d(6, 6);
    let query = chain(3);
    let device = Device::new(DeviceConfig::test_small());
    let cold = ExecSession::new(&device, EngineConfig::default());
    let full = cold.run(&data, &query).unwrap();

    // Roots (in matching-order space) of every completed embedding: the
    // minimal seed set whose completions are exactly the full result.
    let plan = cold.plan_for(&query).unwrap();
    let root_q = plan.order.order[0] as usize;
    let mut roots = BTreeSet::new();
    cold.run_enumerate(&data, &query, &mut |m| {
        roots.insert(m[root_q]);
    })
    .unwrap();
    let seed_paths: Vec<Vec<u32>> = roots.into_iter().map(|r| vec![r]).collect();
    let seed = HostTrie::from_flat_paths(&seed_paths);

    let snap = Snapshot::capture(&data, &cold);
    let restored = Snapshot::decode(&snap.encode()).unwrap();
    let warm_device = Device::new(DeviceConfig::test_small());
    let warm = ExecSession::from_snapshot(&warm_device, EngineConfig::default(), &restored);

    let seeded = warm.run_seeded(restored.graph(), &query, &seed).unwrap();
    assert_eq!(seeded.num_matches, full.num_matches);

    let s = warm.stats();
    assert_eq!(s.plans.misses, 0, "seeded runs must reuse the stored plan");
    assert_eq!(s.plans.hits, 1, "one cache hit per seeded run");
}
