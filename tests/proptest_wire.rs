//! Property tests for the `cuts_trie::serial` wire format: the codec the
//! donation protocol trusts with work that crosses rank boundaries.
//!
//! Three families of properties:
//! * **round-trip identity** — encode→decode is the identity on valid
//!   tries and path sets, byte-stably (re-encoding the decode yields the
//!   same bytes);
//! * **hostile input safety** — truncations, corruptions, and random
//!   garbage must come back as `WireError`, never a panic, because a
//!   faulty interconnect hands the decoder exactly such bytes;
//! * **layout round-trips** — chunking partitions an entry range exactly
//!   (so chunk-at-a-time processing covers every path once), and the CSF
//!   layout reproduces the trie's path set and the closed-form word cost
//!   of the space model.

use bytes::Bytes;
use cuts::trie::csf::Csf;
use cuts::trie::serial::{decode_paths, decode_trie, encode_paths, encode_trie};
use cuts::trie::space::LevelCounts;
use cuts::trie::{Chunks, HostTrie};
use proptest::prelude::*;

/// Uniform-depth path sets (the `from_flat_paths` contract).
fn arb_paths(depth: usize, max: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..500, depth), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trie_roundtrip_identity(paths in arb_paths(3, 40)) {
        let t = HostTrie::from_flat_paths(&paths);
        let enc = encode_trie(&t);
        let back = decode_trie(enc.clone()).expect("valid encoding");
        prop_assert_eq!(&back, &t);
        // Byte-stable: decode→encode reproduces the wire image.
        prop_assert_eq!(encode_trie(&back), enc);
    }

    #[test]
    fn deep_trie_roundtrip(paths in arb_paths(5, 20)) {
        let t = HostTrie::from_flat_paths(&paths);
        let back = decode_trie(encode_trie(&t)).expect("valid encoding");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn paths_roundtrip_identity(paths in arb_paths(4, 30)) {
        let back = decode_paths(encode_paths(&paths)).expect("valid encoding");
        prop_assert_eq!(back, paths);
    }

    #[test]
    fn truncation_errors_never_panic(paths in arb_paths(3, 20), cut in 0usize..200) {
        let enc = encode_trie(&HostTrie::from_flat_paths(&paths));
        if cut < enc.len() {
            // Every proper prefix must decode to an error, not a panic
            // (and on the off chance a prefix parses, it must validate).
            if let Ok(t) = decode_trie(enc.slice(0..cut)) {
                prop_assert!(t.validate().is_ok());
            }
        }
    }

    #[test]
    fn corruption_errors_never_panic(
        paths in arb_paths(3, 20),
        pos in 0usize..200,
        xor in 1u8..=255,
    ) {
        let enc = encode_trie(&HostTrie::from_flat_paths(&paths));
        if !enc.is_empty() {
            let mut raw = enc.to_vec();
            let pos = pos % raw.len();
            raw[pos] ^= xor;
            // Any outcome but a panic is acceptable; a successful decode
            // of corrupted bytes must at least be structurally valid.
            if let Ok(t) = decode_trie(Bytes::from(raw)) {
                let _ = t.validate();
            }
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..120)) {
        let _ = decode_trie(Bytes::from(bytes.clone()));
        let _ = decode_paths(Bytes::from(bytes));
    }

    #[test]
    fn chunks_partition_range_exactly(
        start in 0usize..10_000,
        len in 0usize..5_000,
        size in 1usize..1_000,
    ) {
        let range = start..start + len;
        let chunks: Vec<_> = Chunks::new(range.clone(), size).collect();
        // Every chunk is non-empty and within the size bound, and their
        // concatenation reproduces the range exactly — contiguous, in
        // order, nothing skipped or repeated.
        let mut cursor = range.start;
        for c in &chunks {
            prop_assert!(!c.is_empty());
            prop_assert!(c.len() <= size);
            prop_assert_eq!(c.start, cursor);
            cursor = c.end;
        }
        prop_assert_eq!(cursor, range.end);
        // count() and the ExactSizeIterator length agree with the
        // closed form.
        prop_assert_eq!(Chunks::new(range.clone(), size).count(), len.div_ceil(size));
        prop_assert_eq!(Chunks::new(range, size).len(), len.div_ceil(size));
    }

    #[test]
    fn chunked_path_wire_reassembles(paths in arb_paths(3, 40), size in 1usize..16) {
        // The donation path in practice: chunk a leaf level, encode each
        // chunk independently, and the decoded concatenation must be the
        // original path set in order.
        let t = HostTrie::from_flat_paths(&paths);
        let leaf = if t.levels.is_empty() {
            Vec::new()
        } else {
            t.paths_at_level(t.levels.len() - 1)
        };
        let mut reassembled = Vec::new();
        for r in Chunks::new(0..leaf.len(), size) {
            let back = decode_paths(encode_paths(&leaf[r])).expect("valid encoding");
            reassembled.extend(back);
        }
        prop_assert_eq!(reassembled, leaf);
    }

    #[test]
    fn csf_roundtrips_trie_paths(paths in arb_paths(4, 30)) {
        let t = HostTrie::from_flat_paths(&paths);
        let csf = Csf::from_host_trie(&t);
        let depth = t.levels.len();
        prop_assert_eq!(csf.num_levels(), depth);
        if depth > 0 {
            // Same path set, independent of the per-parent reordering the
            // two-pass build performs.
            let mut a = csf.full_paths();
            let mut b = t.paths_at_level(depth - 1);
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        } else {
            prop_assert!(csf.full_paths().is_empty());
        }
    }

    #[test]
    fn csf_words_match_space_model(paths in arb_paths(3, 40)) {
        // The concrete CSF layout must cost exactly what the closed-form
        // accounting in the space model predicts from level sizes alone.
        let t = HostTrie::from_flat_paths(&paths);
        let csf = Csf::from_host_trie(&t);
        let counts = LevelCounts(t.levels.iter().map(|r| r.len() as u64).collect());
        prop_assert_eq!(csf.words_used() as u64, counts.csf_words(t.levels.len()));
    }
}

// ---------------------------------------------------------------------------
// Snapshot codecs (`cuts_core::snapshot`): the warm-start container's
// building blocks obey the same property families — round-trip identity
// with byte-stable re-encoding, and garbage safety.
// ---------------------------------------------------------------------------

use cuts::engine::snapshot::{
    decode_graph, decode_plan, decode_profile, encode_graph, encode_plan, encode_profile, Snapshot,
};
use cuts::engine::{
    DeviceClass, EngineConfig, ExecSession, IntersectStrategy, OrderPolicy, QueryPlan,
};
use cuts::gpu::{Device, DeviceConfig};
use cuts::graph::generators::{chain, clique, cycle, erdos_renyi, star};
use cuts::graph::profile::{DataProfile, DegreeBucketStats};
use cuts::trie::serial::{decode_csf, encode_csf};

/// Arbitrary degree statistics with an encodable (finite, non-negative)
/// mean.
fn arb_bucket() -> impl Strategy<Value = DegreeBucketStats> {
    (proptest::collection::vec(0u32..50_000, 11), 0u32..1_000_000).prop_map(|(d, avg_q)| {
        let mut deciles = [0u32; 11];
        deciles.copy_from_slice(&d);
        DegreeBucketStats {
            deciles,
            avg: avg_q as f64 / 16.0,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn profile_codec_roundtrip(
        out in arb_bucket(),
        inn in arb_bucket(),
        sigs in proptest::collection::vec(any::<u64>(), 0..48),
        labeled in any::<bool>(),
    ) {
        let p = DataProfile {
            out_degrees: out,
            in_degrees: inn,
            vertices: sigs.len(),
            signatures: sigs,
            labeled,
        };
        let enc = encode_profile(&p);
        let back = decode_profile(&enc).expect("valid profile encoding");
        prop_assert_eq!(&back, &p);
        prop_assert_eq!(encode_profile(&back), enc);
    }

    #[test]
    fn graph_codec_roundtrip(
        n in 2usize..40,
        m in 0usize..120,
        seed in any::<u64>(),
        classes in 1u32..5,
        labeled in any::<bool>(),
    ) {
        let mut g = erdos_renyi(n, m, seed);
        if labeled {
            g = g.with_labels((0..n as u32).map(|v| v % classes).collect());
        }
        let enc = encode_graph(&g);
        let back = decode_graph(&enc).expect("valid graph encoding");
        prop_assert_eq!(back.num_vertices(), g.num_vertices());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        prop_assert_eq!(back.is_labeled(), g.is_labeled());
        let a: Vec<_> = back.edges().collect();
        let b: Vec<_> = g.edges().collect();
        prop_assert_eq!(a, b);
        // Byte-stable: the canonical form admits exactly one encoding.
        prop_assert_eq!(encode_graph(&back), enc);
    }

    #[test]
    fn plan_codec_roundtrip(
        qsel in 0usize..4,
        k in 2usize..6,
        cfg in 0usize..16,
        dev in 0usize..3,
        labeled in any::<bool>(),
    ) {
        let mut query = match qsel {
            0 => clique(k),
            1 => chain(k),
            2 => cycle(k.max(3)),
            _ => star(k),
        };
        if labeled {
            let n = query.num_vertices() as u32;
            query = query.with_labels((0..n).map(|v| v % 3).collect());
        }
        let config = EngineConfig::default()
            .with_order_policy(if cfg & 1 == 0 {
                OrderPolicy::DegreeGreedy
            } else {
                OrderPolicy::IdBfs
            })
            .with_intersect(match (cfg >> 1) & 3 {
                0 => IntersectStrategy::Auto,
                1 => IntersectStrategy::CIntersection,
                2 => IntersectStrategy::PIntersection,
                _ => IntersectStrategy::Bitmap,
            })
            .with_signature_prefilter(cfg & 8 == 0);
        let class = DeviceClass::of(&match dev {
            0 => DeviceConfig::test_small(),
            1 => DeviceConfig::v100_like(),
            _ => DeviceConfig::a100_like(),
        });
        let plan = QueryPlan::build(&query, &config, &class).expect("plannable query");
        let enc = encode_plan(&plan);
        let back = decode_plan(&enc).expect("valid plan encoding");
        // Structural equality covers the order, back-edge constraints,
        // per-level kernel schedule, fingerprints, and budget.
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(encode_plan(&back), enc);
    }

    #[test]
    fn csf_codec_roundtrip(paths in arb_paths(4, 30)) {
        let csf = Csf::from_host_trie(&HostTrie::from_flat_paths(&paths));
        let enc = encode_csf(&csf);
        let back = decode_csf(enc.clone()).expect("valid csf encoding");
        prop_assert_eq!(&back, &csf);
        prop_assert_eq!(encode_csf(&back), enc);
    }

    #[test]
    fn snapshot_container_roundtrip_byte_stable(
        n in 8usize..30,
        m in 10usize..80,
        seed in any::<u64>(),
    ) {
        let data = erdos_renyi(n, m, seed);
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        session.run(&data, &clique(3)).unwrap();
        let snap = Snapshot::capture(&data, &session);
        let enc = snap.encode();
        let back = Snapshot::decode(&enc).expect("own encoding decodes");
        prop_assert_eq!(back.encode(), enc);
    }

    #[test]
    fn container_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..200)) {
        // Any outcome but a panic; random bytes cannot carry the magic
        // *and* a valid table *and* matching checksums by accident at
        // these sizes, so both decoders must report a typed error.
        prop_assert!(Snapshot::decode(&bytes).is_err());
        prop_assert!(cuts::engine::snapshot::inspect(&bytes).is_err());
    }
}

// ---------------------------------------------------------------------------
// Arena slab chains (`cuts_trie::table`): a trie stored as a chain of
// arena slabs must be observationally identical to one stored in a flat
// buffer — same paths out for the same paths in, regardless of slab
// size, growth schedule, or `into_table`/`from_table` recycling.
// ---------------------------------------------------------------------------

use cuts::gpu::{Arena, ClassSpec};
use cuts::trie::Trie;

/// Builds a chained trie from `host` level by level, growing the chain
/// only when a reservation overflows — the session's growth discipline.
fn load_growing(t: &mut Trie, host: &HostTrie) {
    for level in &host.levels {
        loop {
            match t.table().reserve(level.len()) {
                Ok(r) => {
                    for (k, i) in level.clone().enumerate() {
                        r.write(k, host.pa[i], host.ca[i]);
                    }
                    break;
                }
                Err(_) => {
                    let need = t.table().len() + level.len();
                    let target = (t.capacity() * 2).max(need).min(t.table().max_entries());
                    assert!(target > t.capacity(), "limit must cover the host trie");
                    t.grow_to(target).expect("chain growth within the limit");
                }
            }
        }
        t.seal_level();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chained_trie_equals_flat_trie(
        paths in arb_paths(4, 30),
        slab_pow in 3u32..7,
    ) {
        let host = HostTrie::from_flat_paths(&paths);
        let total = host.pa.len().max(1);

        let mut flat = Trie::on_host(total);
        flat.load(&host).expect("flat capacity covers the host trie");

        let device = Device::new(DeviceConfig::test_small());
        let arena = Arena::new(
            &device,
            &[ClassSpec { slab_words: 1 << slab_pow, slabs: 64 }],
        )
        .expect("carve fits test_small");
        let table = cuts::trie::PairTable::chained_on_arena(&arena, 0, total, total)
            .expect("chain fits the class");
        let mut chained = Trie::from_table(table);
        chained.load(&host).expect("chain capacity covers the host trie");

        prop_assert!(chained.table().is_chained());
        prop_assert_eq!(chained.to_host(), flat.to_host());
        prop_assert_eq!(chained.to_host(), host);
    }

    #[test]
    fn grown_chain_equals_flat_trie(
        paths in arb_paths(5, 24),
        slab_pow in 3u32..6,
    ) {
        // Start the chain at a single slab and let reservation overflows
        // drive growth; committed entries and sealed levels must survive
        // every append.
        let host = HostTrie::from_flat_paths(&paths);
        let total = host.pa.len().max(1);

        let device = Device::new(DeviceConfig::test_small());
        let arena = Arena::new(
            &device,
            &[ClassSpec { slab_words: 1 << slab_pow, slabs: 64 }],
        )
        .expect("carve fits test_small");
        let table = cuts::trie::PairTable::chained_on_arena(&arena, 0, 1, total)
            .expect("chain fits the class");
        let mut chained = Trie::from_table(table);
        load_growing(&mut chained, &host);
        prop_assert_eq!(chained.to_host(), host.clone());

        // Slab acquire/release is the only storage traffic: exactly one
        // device allocation (the carve) regardless of how often we grew.
        prop_assert_eq!(arena.stats().device_allocs, 1);

        // Recycling the grown chain keeps its capacity and produces the
        // same trie again from a clean cursor.
        let cap = chained.capacity();
        let mut recycled = Trie::from_table(chained.into_table());
        prop_assert_eq!(recycled.capacity(), cap);
        prop_assert!(recycled.table().is_empty());
        recycled.load(&host).expect("recycled chain retains capacity");
        prop_assert_eq!(recycled.to_host(), host);
    }
}

#[test]
fn truncated_trie_is_wire_error() {
    let t = HostTrie::from_flat_paths(&[vec![1, 2, 3], vec![1, 2, 4]]);
    let enc = encode_trie(&t);
    for cut in [0, 3, 4, enc.len() / 2, enc.len() - 1] {
        assert!(decode_trie(enc.slice(0..cut)).is_err(), "cut {cut}");
    }
}
