//! Property tests for the `cuts_trie::serial` wire format: the codec the
//! donation protocol trusts with work that crosses rank boundaries.
//!
//! Two families of properties:
//! * **round-trip identity** — encode→decode is the identity on valid
//!   tries and path sets, byte-stably (re-encoding the decode yields the
//!   same bytes);
//! * **hostile input safety** — truncations, corruptions, and random
//!   garbage must come back as `WireError`, never a panic, because a
//!   faulty interconnect hands the decoder exactly such bytes.

use bytes::Bytes;
use cuts::trie::serial::{decode_paths, decode_trie, encode_paths, encode_trie};
use cuts::trie::HostTrie;
use proptest::prelude::*;

/// Uniform-depth path sets (the `from_flat_paths` contract).
fn arb_paths(depth: usize, max: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..500, depth), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn trie_roundtrip_identity(paths in arb_paths(3, 40)) {
        let t = HostTrie::from_flat_paths(&paths);
        let enc = encode_trie(&t);
        let back = decode_trie(enc.clone()).expect("valid encoding");
        prop_assert_eq!(&back, &t);
        // Byte-stable: decode→encode reproduces the wire image.
        prop_assert_eq!(encode_trie(&back), enc);
    }

    #[test]
    fn deep_trie_roundtrip(paths in arb_paths(5, 20)) {
        let t = HostTrie::from_flat_paths(&paths);
        let back = decode_trie(encode_trie(&t)).expect("valid encoding");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn paths_roundtrip_identity(paths in arb_paths(4, 30)) {
        let back = decode_paths(encode_paths(&paths)).expect("valid encoding");
        prop_assert_eq!(back, paths);
    }

    #[test]
    fn truncation_errors_never_panic(paths in arb_paths(3, 20), cut in 0usize..200) {
        let enc = encode_trie(&HostTrie::from_flat_paths(&paths));
        if cut < enc.len() {
            // Every proper prefix must decode to an error, not a panic
            // (and on the off chance a prefix parses, it must validate).
            if let Ok(t) = decode_trie(enc.slice(0..cut)) {
                prop_assert!(t.validate().is_ok());
            }
        }
    }

    #[test]
    fn corruption_errors_never_panic(
        paths in arb_paths(3, 20),
        pos in 0usize..200,
        xor in 1u8..=255,
    ) {
        let enc = encode_trie(&HostTrie::from_flat_paths(&paths));
        if !enc.is_empty() {
            let mut raw = enc.to_vec();
            let pos = pos % raw.len();
            raw[pos] ^= xor;
            // Any outcome but a panic is acceptable; a successful decode
            // of corrupted bytes must at least be structurally valid.
            if let Ok(t) = decode_trie(Bytes::from(raw)) {
                let _ = t.validate();
            }
        }
    }

    #[test]
    fn random_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..120)) {
        let _ = decode_trie(Bytes::from(bytes.clone()));
        let _ = decode_paths(Bytes::from(bytes));
    }
}

#[test]
fn truncated_trie_is_wire_error() {
    let t = HostTrie::from_flat_paths(&[vec![1, 2, 3], vec![1, 2, 4]]);
    let enc = encode_trie(&t);
    for cut in [0, 3, 4, enc.len() / 2, enc.len() - 1] {
        assert!(decode_trie(enc.slice(0..cut)).is_err(), "cut {cut}");
    }
}
