//! Property-based invariants across the whole stack (proptest).

use proptest::prelude::*;

use cuts::baseline::{vf2, GsiEngine};
use cuts::engine::intersect::{c_intersection, p_intersection, ScatterScratch};
use cuts::engine::reference;
use cuts::gpu::BlockCounters;
use cuts::prelude::*;
use cuts::trie::serial::{decode_trie, encode_trie};
use cuts::trie::HostTrie;

/// Random undirected graph as an edge list over `n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| Graph::undirected(n, &edges))
    })
}

/// Small connected query graph (from the exact enumeration).
fn arb_query() -> impl Strategy<Value = Graph> {
    (3usize..=5, 0usize..11).prop_map(|(n, i)| {
        let qs = cuts::graph::query_set(n, 11);
        qs[i % qs.len()].graph.clone()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_reference(data in arb_graph(24, 80), query in arb_query()) {
        let device = Device::new(DeviceConfig::test_small());
        let got = CutsEngine::new(&device).run(&data, &query).unwrap().num_matches;
        let want = reference::count_embeddings(&data, &query);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn gsi_and_vf2_match_reference(data in arb_graph(20, 60), query in arb_query()) {
        let device = Device::new(DeviceConfig::test_small());
        let want = reference::count_embeddings(&data, &query);
        let gsi = GsiEngine::new(&device).run(&data, &query).unwrap().num_matches;
        prop_assert_eq!(gsi, want);
        prop_assert_eq!(vf2::count(&data, &query), want);
    }

    #[test]
    fn chunking_never_changes_counts(data in arb_graph(20, 60), query in arb_query(), chunk in 1usize..16) {
        let roomy = Device::new(DeviceConfig::test_small());
        let want = CutsEngine::new(&roomy).run(&data, &query).unwrap().num_matches;
        let tight = Device::new(DeviceConfig::test_small().with_global_mem_words(4096));
        let cfg = cuts::engine::EngineConfig::default().with_chunk_size(chunk);
        // Tight runs may legitimately fail on capacity; when they
        // complete, the count must be identical.
        if let Ok(r) = CutsEngine::with_config(&tight, cfg).run(&data, &query) {
            prop_assert_eq!(r.num_matches, want);
        }
    }

    #[test]
    fn intersection_kernels_agree(
        a in proptest::collection::btree_set(0u32..200, 0..60),
        b in proptest::collection::btree_set(0u32..200, 0..60),
        c in proptest::collection::btree_set(0u32..200, 0..60),
        vwarp in prop::sample::select(vec![1usize, 2, 4, 8, 16, 32]),
    ) {
        let a: Vec<u32> = a.into_iter().collect();
        let b: Vec<u32> = b.into_iter().collect();
        let c: Vec<u32> = c.into_iter().collect();
        let lists: Vec<&[u32]> = vec![&a, &b, &c];
        let mut ctr = BlockCounters::default();
        let (mut rc, mut rp, mut rs) = (Vec::new(), Vec::new(), Vec::new());
        c_intersection(&lists, vwarp, &mut ctr, &mut rc);
        p_intersection(&lists, vwarp, &mut ctr, &mut rp);
        ScatterScratch::new(200).scatter_vector(&lists, &mut ctr, &mut rs);
        prop_assert_eq!(&rc, &rp);
        prop_assert_eq!(&rc, &rs);
        prop_assert!(rc.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn trie_wire_roundtrip(paths in proptest::collection::vec(
        proptest::collection::vec(0u32..1000, 3), 0..50)) {
        let host = HostTrie::from_flat_paths(&paths);
        let back = decode_trie(encode_trie(&host)).unwrap();
        prop_assert_eq!(&back, &host);
        if !paths.is_empty() {
            let mut got = back.paths_at_level(2);
            got.sort();
            let mut want: Vec<_> = paths.clone();
            want.sort();
            want.dedup();
            got.dedup();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn distributed_equals_local(data in arb_graph(18, 50), ranks in 2usize..4) {
        let query = cuts::graph::generators::clique(3);
        let device = Device::new(DeviceConfig::test_small());
        let want = CutsEngine::new(&device).run(&data, &query).unwrap().num_matches;
        let config = cuts::dist::DistConfig {
            device: DeviceConfig::test_small(),
            dist_chunk: 4,
            ..Default::default()
        };
        let got = cuts::dist::run(&data, &query, ranks, &config)
            .unwrap()
            .total_matches;
        prop_assert_eq!(got, want);
    }

    #[test]
    fn insert_then_inverse_restores_csr_and_always_bumps_fingerprint(
        g0 in arb_graph(24, 80),
        picks in proptest::collection::vec((0u32..24, 0u32..24), 1..12),
    ) {
        use cuts::graph::EdgeBatch;
        let mut g = g0.clone();
        let n = g.num_vertices() as u32;
        // Distinct absent non-loop edges: the only inserts a batch accepts.
        let mut batch = EdgeBatch::new();
        let mut chosen = std::collections::BTreeSet::new();
        for (a, b) in picks {
            let (u, v) = (a % n, b % n);
            let key = (u.min(v), u.max(v));
            if u != v && !g.has_edge(u, v) && chosen.insert(key) {
                batch.insert(key.0, key.1);
            }
        }
        if batch.is_empty() {
            continue; // dense draw left nothing insertable; next case
        }

        let bytes = |g: &Graph| {
            (
                g.out_csr().offsets().to_vec(),
                g.out_csr().targets().to_vec(),
                g.in_csr().offsets().to_vec(),
                g.in_csr().targets().to_vec(),
            )
        };
        let (before, fp0, v0) = (bytes(&g), g.fingerprint(), g.version());

        let delta = g.apply_batch(&batch).unwrap();
        prop_assert_eq!(delta.inserted.len(), 2 * batch.inserts().len());
        prop_assert!(g.version() > v0);
        let fp1 = g.fingerprint();
        prop_assert_ne!(fp1, fp0, "insert batch must move the fingerprint");

        g.apply_batch(&batch.inverse()).unwrap();
        prop_assert_eq!(bytes(&g), before, "inverse batch must restore the CSR bytes");
        let fp2 = g.fingerprint();
        // The CSR is back but history is not: the version-inclusive
        // fingerprint keeps moving so stale snapshots stay detectable.
        prop_assert_ne!(fp2, fp0);
        prop_assert_ne!(fp2, fp1);
    }

    #[test]
    fn snapshots_go_stale_on_any_committed_batch(
        g0 in arb_graph(20, 60),
        a in 0u32..20, b in 0u32..20,
    ) {
        use cuts::engine::{Snapshot, SnapshotError};
        use cuts::graph::EdgeBatch;
        let mut g = g0.clone();
        let n = g.num_vertices() as u32;
        let (u, v) = (a % n, b % n);
        if u == v || g.has_edge(u, v) {
            continue; // the drawn edit would be rejected; next case
        }

        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let snap = Snapshot::capture(&g, &session);
        prop_assert!(snap.validate_for(&g).is_ok(), "fresh snapshot validates");

        let mut batch = EdgeBatch::new();
        batch.insert(u, v);
        g.apply_batch(&batch).unwrap();
        prop_assert!(matches!(
            snap.validate_for(&g),
            Err(SnapshotError::StaleGraph { .. })
        ));
        // Undoing the edit does not resurrect the snapshot: the edit
        // happened, and anything derived from the old graph is suspect.
        g.apply_batch(&batch.inverse()).unwrap();
        prop_assert!(matches!(
            snap.validate_for(&g),
            Err(SnapshotError::StaleGraph { .. })
        ));
    }

    #[test]
    fn csf_equivalent_to_trie(paths in proptest::collection::vec(
        proptest::collection::vec(0u32..50, 4), 1..40)) {
        let host = HostTrie::from_flat_paths(&paths);
        let csf = cuts::trie::csf::Csf::from_host_trie(&host);
        let mut a = csf.full_paths();
        let mut b = host.paths_at_level(3);
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
        // CSF never larger than PA/CA for the same path set.
        prop_assert!(csf.words_used() <= 2 * host.len() + host.levels.len());
    }
}
