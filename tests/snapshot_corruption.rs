//! Deterministic corruption harness for the snapshot container: every
//! mutation — single-bit flips over the whole file, truncation at every
//! byte boundary, a shuffled section table, a version bump, trailing
//! garbage — must surface as a typed [`SnapshotError`], never a panic and
//! never a silently-wrong decode. Every byte of a well-formed container
//! is covered by the magic, the version check, the table CRC, or a
//! per-section CRC, so there is no position where a flip may pass.

use cuts::engine::snapshot::{crc32, Snapshot, SECTION_TAGS, SNAPSHOT_VERSION};
use cuts::engine::SnapshotError;
use cuts::graph::generators::{chain, clique, mesh2d};
use cuts::prelude::*;
use cuts::trie::csf::Csf;
use cuts::trie::HostTrie;

/// A small container exercising every section with a non-empty payload.
fn sample_bytes() -> Vec<u8> {
    let data = mesh2d(4, 4);
    let device = Device::new(DeviceConfig::test_small());
    let session = ExecSession::new(&device, EngineConfig::default());
    session.run(&data, &clique(3)).unwrap();
    session.run(&data, &chain(3)).unwrap();
    let mut snap = Snapshot::capture(&data, &session);
    let paths = vec![vec![0u32, 1, 5], vec![0, 4, 5], vec![1, 2, 6]];
    snap.add_trie(7, Csf::from_host_trie(&HostTrie::from_flat_paths(&paths)));
    snap.encode()
}

/// Layout constants mirrored from the spec (DESIGN.md §12).
const TABLE_START: usize = 20;
const TABLE_ENTRY: usize = 24;

#[test]
fn every_single_bit_flip_is_rejected() {
    let good = sample_bytes();
    assert!(Snapshot::decode(&good).is_ok());
    for pos in 0..good.len() {
        // One varying bit per byte keeps the sweep linear while still
        // touching every bit index; the header gets all eight.
        let bits: &[u8] = if pos < TABLE_START + SECTION_TAGS.len() * TABLE_ENTRY {
            &[0, 1, 2, 3, 4, 5, 6, 7]
        } else {
            &[(pos % 8) as u8]
        };
        for &bit in bits {
            let mut bad = good.clone();
            bad[pos] ^= 1 << bit;
            let err = Snapshot::decode(&bad)
                .expect_err(&format!("flip of bit {bit} at byte {pos} must be rejected"));
            // The decode already proved the error is typed; inspection
            // must reject the same mutation.
            let _ = format!("{err}");
            assert!(
                cuts::engine::snapshot::inspect(&bad).is_err(),
                "inspect accepted bit {bit} flipped at byte {pos}"
            );
        }
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_rejected() {
    let good = sample_bytes();
    for len in 0..good.len() {
        let err = Snapshot::decode(&good[..len])
            .expect_err(&format!("prefix of {len} byte(s) must be rejected"));
        let _ = format!("{err}");
    }
    // Trailing bytes beyond the last section are corruption too.
    let mut long = good.clone();
    long.push(0);
    assert!(matches!(
        Snapshot::decode(&long),
        Err(SnapshotError::Corrupt(_))
    ));
}

#[test]
fn bad_magic_and_version_bump_are_typed() {
    let good = sample_bytes();
    let mut bad = good.clone();
    bad[0] = b'X';
    assert!(matches!(
        Snapshot::decode(&bad),
        Err(SnapshotError::BadMagic)
    ));

    // A future format version must be refused up front, before any
    // payload is trusted.
    let mut future = good.clone();
    future[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
    assert!(matches!(
        Snapshot::decode(&future),
        Err(SnapshotError::UnsupportedVersion { found }) if found == SNAPSHOT_VERSION + 1
    ));
}

#[test]
fn shuffled_section_table_is_rejected() {
    let good = sample_bytes();
    let entries = SECTION_TAGS.len();
    // Swap every pair of table entries, repair the table CRC so the
    // mutation survives the checksum, and require the ordering check to
    // catch it.
    for a in 0..entries {
        for b in (a + 1)..entries {
            let mut bad = good.clone();
            let (ra, rb) = (
                TABLE_START + a * TABLE_ENTRY..TABLE_START + (a + 1) * TABLE_ENTRY,
                TABLE_START + b * TABLE_ENTRY..TABLE_START + (b + 1) * TABLE_ENTRY,
            );
            let ea: Vec<u8> = bad[ra.clone()].to_vec();
            let eb: Vec<u8> = bad[rb.clone()].to_vec();
            bad[ra].copy_from_slice(&eb);
            bad[rb].copy_from_slice(&ea);
            let table = bad[TABLE_START..TABLE_START + entries * TABLE_ENTRY].to_vec();
            bad[16..20].copy_from_slice(&crc32(&table).to_le_bytes());
            let err = Snapshot::decode(&bad).expect_err(&format!(
                "swapped table entries {a} and {b} must be rejected"
            ));
            assert!(
                matches!(
                    err,
                    SnapshotError::Corrupt(_) | SnapshotError::MissingSection { .. }
                ),
                "swap {a}<->{b}: unexpected error {err}"
            );
        }
    }

    // An unknown tag (CRC repaired likewise) is a missing section.
    let mut bad = good.clone();
    bad[TABLE_START..TABLE_START + 4].copy_from_slice(b"WAT?");
    let table = bad[TABLE_START..TABLE_START + entries * TABLE_ENTRY].to_vec();
    bad[16..20].copy_from_slice(&crc32(&table).to_le_bytes());
    assert!(matches!(
        Snapshot::decode(&bad),
        Err(SnapshotError::MissingSection { .. })
    ));
}

#[test]
fn payload_flip_names_the_damaged_section() {
    let good = sample_bytes();
    // Flip the last byte of the file: it belongs to the final (CSFS)
    // section's payload, so the error must name that section.
    let mut bad = good.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x80;
    match Snapshot::decode(&bad) {
        Err(SnapshotError::SectionChecksum { section }) => {
            assert_eq!(&section, b"CSFS");
        }
        other => panic!("expected a section checksum failure, got {other:?}"),
    }
}
