//! Serving-tier equivalence suite: routing a job stream across simulated
//! multi-GPU ranks must be a pure throughput optimisation. Every
//! rank × lane shape produces per-job results byte-identical to a serial
//! drain, and a rank killed mid-stream loses no jobs — its in-flight and
//! queued work is re-admitted and finished by the survivors.

use cuts::engine::sched::parse_manifest;
use cuts::prelude::*;

/// A mixed stream: several query shapes, repeats, priorities, and
/// classes, so placement and migration actually have choices to make.
const MANIFEST: &str = "\
mesh:4x4 clique:3 repeat=3 class=gold
mesh:4x4 chain:3 priority=2
er:24:60:7 cycle:4 name=ring repeat=2
mesh:3x3 clique:3 class=steel
er:20:50:3 chain:4
";

fn tier(ranks: usize, lanes: usize) -> ServeTier {
    ServeTier::new(
        ServeConfig::builder()
            .ranks(ranks)
            .devices_per_rank(1)
            .lanes(lanes)
            .device_config(DeviceConfig::test_small())
            .telemetry(false)
            .build()
            .unwrap(),
    )
}

fn assert_byte_identical(serial: &ServeReport, report: &ServeReport, shape: &str) {
    assert_eq!(
        report.outcomes.len(),
        serial.outcomes.len(),
        "{shape}: outcome count"
    );
    for (a, b) in serial.outcomes.iter().zip(&report.outcomes) {
        match (&a.result, &b.result) {
            (Ok(x), Ok(y)) => assert_eq!(
                x.canonical_bytes(),
                y.canonical_bytes(),
                "{shape}: job {} diverged from the serial baseline",
                a.id.0
            ),
            (Err(_), Err(_)) => {}
            _ => panic!("{shape}: job {} ok/err status diverged", a.id.0),
        }
    }
}

#[test]
fn every_rank_lane_shape_is_byte_identical_to_serial() {
    let jobs = parse_manifest(MANIFEST).unwrap();
    let serial = tier(1, 1).run_serial(&jobs).unwrap();
    assert_eq!(serial.outcomes.len(), jobs.len());
    for ranks in [1usize, 2, 4] {
        for lanes in [1usize, 2, 4] {
            let report = tier(ranks, lanes).run_stream(&jobs).unwrap();
            let shape = format!("{ranks} rank(s) x {lanes} lane(s)");
            assert_eq!(report.stats.submitted, jobs.len() as u64, "{shape}");
            assert_eq!(
                report.stats.completed + report.stats.failed,
                jobs.len() as u64,
                "{shape}: every job reaches a terminal state"
            );
            assert!(report.stats.lost_ranks.is_empty(), "{shape}: clean run");
            assert_byte_identical(&serial, &report, &shape);
        }
    }
}

#[test]
fn killing_a_rank_mid_stream_loses_no_jobs() {
    let jobs = parse_manifest(MANIFEST).unwrap();
    let serial = tier(1, 1).run_serial(&jobs).unwrap();
    // Pacing keeps every job on-device for a few milliseconds so the
    // victim is guaranteed to reach its crash trigger (one completed
    // job) before idle peers can drain the whole stream.
    let config = ServeConfig::builder()
        .ranks(3)
        .lanes(2)
        .device_config(DeviceConfig::test_small())
        .pacing(50.0)
        .fault_plan(FaultPlan::parse("crash:1@1").unwrap())
        .telemetry(false)
        .build()
        .unwrap();
    let report = ServeTier::new(config).run_stream(&jobs).unwrap();
    // The victim actually died, and nothing fell through the cracks: one
    // terminal outcome per submitted job, byte-identical to serial.
    assert_eq!(report.stats.lost_ranks, vec![1], "fault plan fired");
    assert_eq!(report.stats.submitted, jobs.len() as u64);
    assert_eq!(
        report.stats.completed + report.stats.failed,
        jobs.len() as u64,
        "zero lost jobs after the crash"
    );
    assert_byte_identical(&serial, &report, "kill-a-rank");
    // The dead rank cannot be the one that finished the stream.
    let done: u64 = report.stats.per_rank_jobs.iter().sum();
    assert_eq!(done, jobs.len() as u64);
    assert!(
        report.stats.per_rank_jobs[0] + report.stats.per_rank_jobs[2] > 0,
        "survivors committed the recovered work"
    );
}

#[test]
fn panicking_rank_is_contained_and_recovered() {
    let jobs = parse_manifest(MANIFEST).unwrap();
    let serial = tier(1, 1).run_serial(&jobs).unwrap();
    let config = ServeConfig::builder()
        .ranks(2)
        .lanes(2)
        .device_config(DeviceConfig::test_small())
        .pacing(50.0)
        .fault_plan(FaultPlan::parse("panic:0@1").unwrap())
        .telemetry(false)
        .build()
        .unwrap();
    let report = ServeTier::new(config).run_stream(&jobs).unwrap();
    assert_eq!(report.stats.lost_ranks, vec![0]);
    assert_eq!(
        report.stats.completed + report.stats.failed,
        jobs.len() as u64
    );
    assert_byte_identical(&serial, &report, "panic-a-rank");
}
