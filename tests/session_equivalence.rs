//! Plan/session equivalence suite: the QueryPlan / ExecSession split is
//! a pure restructuring of the execution pipeline, so every reuse path —
//! plan-cache hits, warm sessions over arena slab chains, batched runs,
//! and fault-recovery replays in the distributed runtime — must produce
//! results bit-identical to a fresh one-shot engine, and warm runs must
//! perform **zero** new device allocations.

use std::time::Duration;

use cuts::dist::{run, DistConfig, FaultPlan, Partition};
use cuts::graph::generators::{clique, cycle, erdos_renyi, mesh2d};
use cuts::graph::Graph;
use cuts::prelude::*;

fn workloads() -> Vec<(&'static str, Graph, Graph)> {
    vec![
        ("clique/triangle", clique(6), clique(3)),
        ("mesh/4-cycle", mesh2d(8, 8), cycle(4)),
        ("erdos-renyi/k4", erdos_renyi(60, 300, 23), clique(4)),
    ]
}

/// Fresh-engine ground truth: a new device and engine per call, exactly
/// what callers did before the session API existed.
fn fresh(data: &Graph, query: &Graph) -> MatchResult {
    let device = Device::new(DeviceConfig::test_small());
    CutsEngine::new(&device).run(data, query).unwrap()
}

fn assert_same(name: &str, how: &str, got: &MatchResult, want: &MatchResult) {
    assert_eq!(got.num_matches, want.num_matches, "{name}: {how} count");
    assert_eq!(
        got.level_counts, want.level_counts,
        "{name}: {how} level counts"
    );
}

#[test]
fn warm_session_runs_equal_fresh_engine_runs() {
    for (name, data, query) in workloads() {
        let want = fresh(&data, &query);
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        for i in 0..3 {
            let got = session.run(&data, &query).unwrap();
            assert_same(name, &format!("session run {i}"), &got, &want);
        }
        let s = session.stats();
        assert_eq!(s.plans.misses, 1, "{name}: plan built once");
        assert_eq!(s.plans.hits, 2, "{name}: later runs hit the cache");
    }
}

#[test]
fn warm_runs_perform_zero_new_device_allocations() {
    for (name, data, query) in workloads() {
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        session.run(&data, &query).unwrap();
        let cold_allocs = device.alloc_calls();
        assert!(cold_allocs > 0, "{name}: cold run must allocate");
        for _ in 0..4 {
            session.run(&data, &query).unwrap();
        }
        assert_eq!(
            device.alloc_calls(),
            cold_allocs,
            "{name}: warm runs must be served entirely from the arena carve"
        );
    }
}

#[test]
fn plan_cache_disabled_still_equivalent() {
    for (name, data, query) in workloads() {
        let want = fresh(&data, &query);
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::with_cache_capacity(&device, EngineConfig::default(), 0);
        let got = session.run(&data, &query).unwrap();
        assert_same(name, "uncached run", &got, &want);
        let again = session.run(&data, &query).unwrap();
        assert_same(name, "second uncached run", &again, &want);
        assert_eq!(
            session.stats().plans.hits,
            0,
            "{name}: capacity 0 never hits"
        );
    }
}

#[test]
fn explicit_plan_reuse_equals_fresh_runs() {
    for (name, data, query) in workloads() {
        let want = fresh(&data, &query);
        let device = Device::new(DeviceConfig::test_small());
        let session = ExecSession::new(&device, EngineConfig::default());
        let plan = session.plan_for(&query).unwrap();
        for i in 0..2 {
            let got = session.run_with_plan(&plan, &data).unwrap();
            assert_same(name, &format!("run_with_plan {i}"), &got, &want);
        }
    }
}

#[test]
fn batched_runs_equal_per_graph_fresh_runs() {
    let graphs: Vec<Graph> = vec![
        clique(6),
        mesh2d(6, 6),
        erdos_renyi(50, 220, 7),
        erdos_renyi(50, 220, 8),
    ];
    let query = clique(3);
    let device = Device::new(DeviceConfig::test_small());
    let session = ExecSession::new(&device, EngineConfig::default());
    let batch = session.run_batch(&graphs, &query);
    assert_eq!(batch.len(), graphs.len());
    for (i, (g, got)) in graphs.iter().zip(&batch).enumerate() {
        let got = got.as_ref().expect("batch job succeeds");
        let want = fresh(g, &query);
        assert_same("batch", &format!("graph {i}"), got, &want);
    }
    // One plan serves the whole batch.
    assert_eq!(session.stats().plans.misses, 1);
}

#[test]
fn fault_replays_reuse_the_rank_plan_and_hold_counts_stable() {
    let data = erdos_renyi(60, 240, 17);
    let query = clique(3);
    let want = fresh(&data, &query).num_matches;

    let mut config = DistConfig {
        device: DeviceConfig::test_small(),
        dist_chunk: 8,
        partition: Partition::RoundRobin,
        rank_timeout: Duration::from_millis(40),
        ..Default::default()
    };
    config.fault_plan = FaultPlan::parse("crash:2@1, drop:0->1@2, delay:1->0@1+50").unwrap();

    let r = run(&data, &query, 3, &config).unwrap();
    assert_eq!(r.total_matches, want, "replays must not change the count");
    assert!(!r.recovery.is_clean(), "the fault plan must actually fire");
    for m in &r.per_rank {
        if m.lost {
            continue;
        }
        assert!(
            m.plan_builds <= 1,
            "rank {}: plan must be built at most once, got {}",
            m.rank,
            m.plan_builds
        );
        assert!(
            m.plan_reuses > 0,
            "rank {}: recovered/replayed chunks must reuse the rank plan",
            m.rank
        );
    }
}
