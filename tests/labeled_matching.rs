//! Labelled subgraph matching (the extension the GSI comparator's design
//! centres on): labels constrain candidates when both graphs carry them,
//! and every engine must agree with the reference under that rule.

use cuts::baseline::{vf2, GsiEngine, GunrockEngine};
use cuts::engine::reference;
use cuts::graph::generators::{chain, clique, erdos_renyi};
use cuts::graph::labels::{degree_band_labels, random_labels, zipf_labels};
use cuts::prelude::*;

fn labeled_pair(seed: u64) -> (Graph, Graph) {
    let data = erdos_renyi(60, 240, seed);
    let dl = random_labels(60, 3, seed + 1);
    let data = data.with_labels(dl);
    let query = clique(3).with_labels(vec![0, 1, 2]);
    (data, query)
}

#[test]
fn engines_agree_on_labeled_graphs() {
    for seed in [1u64, 2, 3] {
        let (data, query) = labeled_pair(seed);
        let want = reference::count_embeddings(&data, &query);
        let device = Device::new(DeviceConfig::test_small());
        let cuts = CutsEngine::new(&device).run(&data, &query).unwrap();
        assert_eq!(cuts.num_matches, want, "cuts, seed {seed}");
        let gsi = GsiEngine::new(&device).run(&data, &query).unwrap();
        assert_eq!(gsi.num_matches, want, "gsi, seed {seed}");
        let gr = GunrockEngine::new(&device).run(&data, &query).unwrap();
        assert_eq!(gr.num_matches, want, "gunrock, seed {seed}");
        assert_eq!(vf2::count(&data, &query), want, "vf2, seed {seed}");
    }
}

#[test]
fn labels_prune_candidates() {
    let (data, query) = labeled_pair(7);
    let device = Device::new(DeviceConfig::test_small());
    let labeled = CutsEngine::new(&device).run(&data, &query).unwrap();
    // Same structure without labels admits strictly more embeddings
    // (unless the unlabeled count is already 0).
    let unl_data = erdos_renyi(60, 240, 7);
    let unl_query = clique(3);
    let unlabeled = CutsEngine::new(&device).run(&unl_data, &unl_query).unwrap();
    assert!(labeled.num_matches <= unlabeled.num_matches);
    assert!(labeled.level_counts[0] < unlabeled.level_counts[0]);
}

#[test]
fn labeled_embeddings_respect_labels() {
    let (data, query) = labeled_pair(11);
    let device = Device::new(DeviceConfig::test_small());
    let mut n = 0u64;
    CutsEngine::new(&device)
        .run_enumerate(&data, &query, &mut |m| {
            n += 1;
            for q in 0..3u32 {
                assert_eq!(data.label(m[q as usize]), query.label(q));
            }
        })
        .unwrap();
    assert!(n > 0, "labelled workload should still find matches");
}

#[test]
fn wildcard_semantics() {
    // Labelled data + unlabelled query behaves exactly like unlabelled.
    let data = erdos_renyi(40, 160, 13);
    let labeled_data = erdos_renyi(40, 160, 13).with_labels(random_labels(40, 4, 5));
    let query = chain(3);
    let device = Device::new(DeviceConfig::test_small());
    let a = CutsEngine::new(&device).run(&data, &query).unwrap();
    let b = CutsEngine::new(&device).run(&labeled_data, &query).unwrap();
    assert_eq!(a.num_matches, b.num_matches);
}

#[test]
fn distributed_labeled_matches_single_node() {
    let data = erdos_renyi(50, 200, 17).with_labels(zipf_labels(50, 4, 3));
    let query = clique(3).with_labels(vec![0, 0, 1]);
    let device = Device::new(DeviceConfig::test_small());
    let want = CutsEngine::new(&device)
        .run(&data, &query)
        .unwrap()
        .num_matches;
    let config = cuts::dist::DistConfig {
        device: DeviceConfig::test_small(),
        dist_chunk: 4,
        ..Default::default()
    };
    let r = cuts::dist::run(&data, &query, 3, &config).unwrap();
    assert_eq!(r.total_matches, want);
}

#[test]
fn degree_band_labels_work_as_selectors() {
    // Band labels let a query pin its root to hubs only.
    let data = Dataset::Enron.generate(Scale::Custom(1.0 / 8192.0));
    let bands = degree_band_labels(&data, 8);
    let max_band = *bands.iter().max().unwrap();
    let data = data.with_labels(bands.clone());
    // A single-vertex query labelled with the top band matches exactly
    // the vertices in that band.
    let q = Graph::undirected(1, &[]).with_labels(vec![max_band]);
    let device = Device::new(DeviceConfig::test_small());
    let got = CutsEngine::new(&device).run(&data, &q).unwrap().num_matches;
    let expect = bands.iter().filter(|&&b| b == max_band).count() as u64;
    assert_eq!(got, expect);
}
