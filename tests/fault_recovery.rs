//! Deterministic fault-injection and recovery suite for the distributed
//! runtime.
//!
//! The invariant under test everywhere: **an injected failure never
//! changes `total_matches`** — any seeded or hand-written `FaultPlan`
//! that leaves at least one rank alive produces a run that completes
//! `Ok` with a count bit-identical to the fault-free single-node count,
//! and reports what recovery cost instead of panicking.

use std::time::Duration;

use cuts::dist::worker::WorkerError;
use cuts::dist::{run, DistConfig, FaultPlan, Partition, RecoveryStats};
use cuts::graph::generators::{barabasi_albert, clique, erdos_renyi};
use cuts::graph::Graph;
use cuts::prelude::*;

fn single_node_count(data: &Graph, query: &Graph) -> u64 {
    let device = Device::new(DeviceConfig::test_small());
    CutsEngine::new(&device)
        .run(data, query)
        .unwrap()
        .num_matches
}

fn cfg(partition: Partition) -> DistConfig {
    DistConfig {
        device: DeviceConfig::test_small(),
        dist_chunk: 8,
        partition,
        // Short enough that recovery paths actually exercise within the
        // test budget; long enough that healthy ranks never look stale.
        rank_timeout: Duration::from_millis(40),
        ..Default::default()
    }
}

/// The hand-written schedules of the deterministic suite: crashes (both
/// failure modes), message drops on protocol-critical edges, delays
/// long enough to trigger staleness suspicion, and combinations.
fn schedules() -> Vec<(&'static str, &'static str)> {
    vec![
        ("early-crash", "crash:1@0"),
        ("late-panic", "panic:0@2"),
        ("two-rank-crash", "crash:1@1, crash:2@0"),
        ("drop-free-and-work", "drop:1->0@1, drop:0->1@3"),
        ("delayed-claims", "delay:0->1@1+60, delay:1->0@2+45"),
        (
            "crash-plus-drops",
            "crash:2@1, drop:0->1@2, delay:1->0@1+50",
        ),
    ]
}

#[test]
fn injected_faults_never_change_total_matches() {
    let data = erdos_renyi(60, 240, 17);
    let query = clique(3);
    let want = single_node_count(&data, &query);
    for partition in [Partition::RoundRobin, Partition::Block] {
        for (name, spec) in schedules() {
            let mut c = cfg(partition);
            c.fault_plan = FaultPlan::parse(spec).unwrap();
            let r =
                run(&data, &query, 3, &c).unwrap_or_else(|e| panic!("{name}/{partition:?}: {e}"));
            assert_eq!(
                r.total_matches, want,
                "count changed under {name} with {partition:?}"
            );
            assert!(
                !r.recovery.is_clean(),
                "{name}/{partition:?}: fault run must report recovery activity"
            );
        }
    }
}

#[test]
fn seeded_plans_recover_across_partitions_and_ranks() {
    let data = barabasi_albert(70, 3, 9);
    let query = clique(3);
    let want = single_node_count(&data, &query);
    for partition in [Partition::RoundRobin, Partition::AllToRankZero] {
        for seed in [1u64, 7, 42] {
            for ranks in [2usize, 4] {
                let plan = FaultPlan::seeded(seed, ranks);
                assert!(
                    plan.distinct_victims() < ranks,
                    "seeded plan must leave a survivor"
                );
                let mut c = cfg(partition);
                c.fault_plan = plan;
                let r = run(&data, &query, ranks, &c)
                    .unwrap_or_else(|e| panic!("seed {seed}, ranks {ranks}, {partition:?}: {e}"));
                assert_eq!(
                    r.total_matches, want,
                    "seed {seed}, ranks {ranks}, {partition:?}"
                );
            }
        }
    }
}

#[test]
fn fault_run_is_deterministic() {
    let data = erdos_renyi(50, 200, 3);
    let query = clique(3);
    let mut c = cfg(Partition::RoundRobin);
    c.fault_plan = FaultPlan::parse("crash:1@1, drop:0->2@2").unwrap();
    let a = run(&data, &query, 3, &c).unwrap();
    let b = run(&data, &query, 3, &c).unwrap();
    assert_eq!(a.total_matches, b.total_matches);
    assert_eq!(a.recovery.lost_ranks, b.recovery.lost_ranks);
    assert_eq!(a.recovery.messages_dropped, b.recovery.messages_dropped);
}

#[test]
fn recovery_metrics_populated_only_under_faults() {
    let data = erdos_renyi(60, 240, 17);
    let query = clique(3);

    let clean = run(&data, &query, 3, &cfg(Partition::RoundRobin)).unwrap();
    assert_eq!(clean.recovery, RecoveryStats::default(), "fault-free run");
    assert!(clean.per_rank.iter().all(|m| !m.lost));

    let mut c = cfg(Partition::RoundRobin);
    c.fault_plan = FaultPlan::parse("crash:2@0, drop:0->1@1").unwrap();
    let faulty = run(&data, &query, 3, &c).unwrap();
    assert_eq!(faulty.recovery.ranks_lost, 1);
    assert_eq!(faulty.recovery.lost_ranks, vec![2]);
    assert!(faulty.per_rank[2].lost);
    assert!(
        faulty.recovery.chunks_reassigned > 0,
        "{:?}",
        faulty.recovery
    );
    assert!(faulty.recovery.messages_dropped >= 1);
    assert!(faulty.recovery.recovery_millis > 0.0);
    assert_eq!(faulty.total_matches, clean.total_matches);
}

#[test]
fn all_but_one_rank_may_die() {
    let data = erdos_renyi(50, 200, 11);
    let query = clique(3);
    let want = single_node_count(&data, &query);
    let mut c = cfg(Partition::RoundRobin);
    c.fault_plan = FaultPlan::parse("crash:0@0, panic:1@0, crash:3@1").unwrap();
    let r = run(&data, &query, 4, &c).unwrap();
    assert_eq!(r.total_matches, want);
    assert_eq!(r.recovery.ranks_lost, 3);
    // The sole survivor re-ran everything the victims left behind.
    assert!(r.recovery.chunks_reassigned > 0);
}

#[test]
fn worker_panic_surfaces_as_error_not_unwind() {
    // Regression for the runner's old `join().expect(...)`: a panicking
    // worker with no survivors must surface as `Err(Panicked)`, never
    // propagate the unwind out of `run`.
    let data = erdos_renyi(30, 90, 5);
    let query = clique(3);
    let mut c = cfg(Partition::RoundRobin);
    c.fault_plan = FaultPlan::parse("panic:0@0").unwrap();
    match run(&data, &query, 1, &c) {
        Err(WorkerError::Panicked { rank: 0 }) => {}
        other => panic!("expected Err(Panicked), got {other:?}"),
    }
}

#[test]
fn losing_every_rank_is_an_error_not_a_hang() {
    let data = erdos_renyi(30, 90, 5);
    let query = clique(3);
    let mut c = cfg(Partition::RoundRobin);
    c.fault_plan = FaultPlan::parse("crash:0@0, crash:1@0").unwrap();
    match run(&data, &query, 2, &c) {
        Err(WorkerError::InjectedCrash { .. }) => {}
        other => panic!("expected Err(InjectedCrash), got {other:?}"),
    }
}

#[test]
fn message_drops_alone_still_terminate_and_count() {
    // No crashes at all: drop a FREE broadcast and a WORK payload. The
    // old all-peers-free termination would hang on the first and lose
    // work on the second; the ledger-driven runtime shrugs both off.
    let data = barabasi_albert(60, 3, 5);
    let query = clique(3);
    let want = single_node_count(&data, &query);
    let mut c = cfg(Partition::AllToRankZero);
    c.dist_chunk = 4;
    c.fault_plan = FaultPlan::parse("drop:1->0@1, drop:0->1@3, drop:0->2@2").unwrap();
    let r = run(&data, &query, 3, &c).unwrap();
    assert_eq!(r.total_matches, want);
    assert_eq!(r.recovery.ranks_lost, 0);
    assert!(r.recovery.messages_dropped >= 1);
}
