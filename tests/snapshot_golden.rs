//! Golden-fixture stability: two tiny snapshot containers are checked in
//! under `tests/fixtures/`, and the encoder must keep reproducing them
//! byte for byte. A drift here means old snapshots in the field would be
//! rejected (or worse, misread) by new builds — the test fails loudly
//! with upgrade instructions instead of letting that slip through.
//!
//! Regenerate intentionally with:
//! `CUTS_REGEN_FIXTURES=1 cargo test --test snapshot_golden`

use std::path::PathBuf;

use cuts::engine::Snapshot;
use cuts::graph::generators::{chain, clique, erdos_renyi, mesh2d};
use cuts::graph::Graph;
use cuts::prelude::*;
use cuts::trie::csf::Csf;
use cuts::trie::HostTrie;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Deterministic builder: plans every query on a `test` device with the
/// default engine config, then attaches one tiny result trie.
fn build_fixture(data: Graph, queries: &[Graph]) -> Snapshot {
    let device = Device::new(DeviceConfig::test_small());
    let session = ExecSession::new(&device, EngineConfig::default());
    for q in queries {
        session.plan_for(q).unwrap();
    }
    let mut snap = Snapshot::capture(&data, &session);
    let paths = vec![vec![0u32, 1], vec![0, 2], vec![1, 2]];
    snap.add_trie(42, Csf::from_host_trie(&HostTrie::from_flat_paths(&paths)));
    snap
}

fn unlabeled_fixture() -> Snapshot {
    build_fixture(mesh2d(3, 3), &[chain(3), clique(3)])
}

fn labeled_fixture() -> Snapshot {
    let labels = |n: usize| (0..n as u32).map(|v| v % 3).collect::<Vec<_>>();
    let data = erdos_renyi(12, 30, 7).with_labels(labels(12));
    let q = chain(3).with_labels(labels(3));
    build_fixture(data, &[q])
}

fn check_fixture(name: &str, snap: &Snapshot) {
    let path = fixture_path(name);
    let encoded = snap.encode();
    if std::env::var_os("CUTS_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &encoded).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {}: {e}\n\
             Generate it with `CUTS_REGEN_FIXTURES=1 cargo test --test snapshot_golden`.",
            path.display()
        )
    });
    // The stored container must still decode and re-encode byte-stably
    // regardless of whether the live encoder drifted.
    let decoded = Snapshot::decode(&golden).unwrap_or_else(|e| {
        panic!(
            "golden fixture {} no longer decodes: {e}\n\
             This build cannot read snapshots written by the build that produced the\n\
             fixture — a wire-format compatibility break. If the format change is\n\
             intentional, bump SNAPSHOT_VERSION in crates/core/src/snapshot.rs, add a\n\
             versioning note to DESIGN.md \u{a7}12, and regenerate the fixtures with\n\
             `CUTS_REGEN_FIXTURES=1 cargo test --test snapshot_golden`.",
            path.display()
        )
    });
    assert_eq!(
        decoded.encode(),
        golden,
        "golden fixture {} decodes but does not re-encode byte-identically",
        path.display()
    );
    assert_eq!(
        encoded,
        golden,
        "the encoder no longer reproduces golden fixture {} byte for byte.\n\
         If you changed the wire format (or anything feeding it: fingerprint hashing,\n\
         plan construction, profile layout) intentionally: bump SNAPSHOT_VERSION in\n\
         crates/core/src/snapshot.rs, document the change in DESIGN.md \u{a7}12, and\n\
         regenerate with `CUTS_REGEN_FIXTURES=1 cargo test --test snapshot_golden`.\n\
         If not, this is a silent compatibility regression: snapshots written by\n\
         released builds would stop loading. Fix the encoder instead.",
        path.display()
    );
}

#[test]
fn golden_unlabeled_snapshot_is_stable() {
    check_fixture("mesh3x3-unlabeled.snap", &unlabeled_fixture());
}

#[test]
fn golden_labeled_snapshot_is_stable() {
    check_fixture("er12-labeled.snap", &labeled_fixture());
}
