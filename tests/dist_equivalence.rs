//! Cross-rank count-equivalence matrix: the distributed runtime must
//! report exactly the single-node `CutsEngine` count for every
//! combination of rank count × partition strategy × data graph. This is
//! the paper's Table 6 property ("the distributed implementation finds
//! the same embeddings") as an exhaustive grid.

use cuts::dist::{run, DistConfig, Partition};
use cuts::graph::generators::{barabasi_albert, clique, cycle, erdos_renyi, mesh2d};
use cuts::graph::Graph;
use cuts::prelude::*;

fn single_node_count(data: &Graph, query: &Graph) -> u64 {
    let device = Device::new(DeviceConfig::test_small());
    CutsEngine::new(&device)
        .run(data, query)
        .unwrap()
        .num_matches
}

fn cfg(partition: Partition) -> DistConfig {
    DistConfig {
        device: DeviceConfig::test_small(),
        dist_chunk: 8,
        partition,
        ..Default::default()
    }
}

fn grid_graphs() -> Vec<(&'static str, Graph, Graph)> {
    vec![
        ("erdos-renyi/triangle", erdos_renyi(60, 240, 17), clique(3)),
        (
            "barabasi-albert/triangle",
            barabasi_albert(70, 3, 9),
            clique(3),
        ),
        ("mesh/4-cycle", mesh2d(8, 8), cycle(4)),
    ]
}

#[test]
fn counts_equal_single_node_across_ranks_and_partitions() {
    for (name, data, query) in grid_graphs() {
        let want = single_node_count(&data, &query);
        assert!(want > 0, "{name}: degenerate workload");
        for partition in [
            Partition::RoundRobin,
            Partition::Block,
            Partition::AllToRankZero,
        ] {
            for ranks in [1usize, 2, 4, 8] {
                let r = run(&data, &query, ranks, &cfg(partition))
                    .unwrap_or_else(|e| panic!("{name}, {partition:?}, ranks {ranks}: {e}"));
                assert_eq!(
                    r.total_matches, want,
                    "{name}, {partition:?}, ranks {ranks}"
                );
                assert_eq!(r.per_rank.len(), ranks);
                assert!(
                    r.recovery.is_clean(),
                    "{name}, {partition:?}, ranks {ranks}: fault-free run reported recovery {:?}",
                    r.recovery
                );
            }
        }
    }
}

#[test]
fn per_rank_matches_sum_to_total_in_clean_runs() {
    // In a fault-free run nothing is duplicated or lost, so the per-rank
    // match counts partition the total exactly.
    let data = erdos_renyi(60, 240, 17);
    let query = clique(3);
    for ranks in [2usize, 4, 8] {
        let r = run(&data, &query, ranks, &cfg(Partition::RoundRobin)).unwrap();
        let sum: u64 = r.per_rank.iter().map(|m| m.matches).sum();
        assert_eq!(sum, r.total_matches, "ranks {ranks}");
    }
}
