//! Batch-dynamic equivalence: a [`DynamicSession`]'s `MatchDelta` stream,
//! folded over the registration-time match set, must land on exactly the
//! match set a full recompute over the mutated graph produces — after
//! every batch, byte-identically — across graphs × queries × randomized
//! insert/delete schedules. A second test drives the serve-tier
//! subscription path under a kill-a-rank fault plan: the folded watcher
//! stream must stay seamless across the failover.

use std::collections::BTreeSet;

use cuts::engine::DynamicSession;
use cuts::graph::generators::{chain, clique, cycle, erdos_renyi, mesh2d};
use cuts::graph::{EdgeBatch, Graph, VertexId};
use cuts::prelude::*;

/// Deterministic 64-bit LCG (MMIX constants): schedules must not drift
/// between runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Cyclic labels, enough classes to prune but not empty the result.
fn labels(n: usize, classes: u32) -> Vec<u32> {
    (0..n as u32).map(|v| v % classes).collect()
}

fn data_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("mesh-6x6", mesh2d(6, 6)),
        ("er-40-120", erdos_renyi(40, 120, 11)),
        (
            "er-labeled",
            erdos_renyi(36, 100, 7).with_labels(labels(36, 3)),
        ),
    ]
}

fn queries() -> Vec<(&'static str, Graph)> {
    vec![
        ("triangle", clique(3)),
        ("chain4", chain(4)),
        ("cycle4", cycle(4)),
    ]
}

/// A randomized schedule of `batches` batches, each mixing inserts of
/// absent edges with deletes of present ones, tracked against the live
/// undirected edge set so batches always validate.
fn schedule(g: &Graph, batches: usize, edits: usize, seed: u64) -> Vec<EdgeBatch> {
    let mut rng = Lcg(seed);
    let n = g.num_vertices();
    let mut edges: BTreeSet<(VertexId, VertexId)> = g.edges().filter(|(u, v)| u < v).collect();
    let mut out = Vec::with_capacity(batches);
    for _ in 0..batches {
        let mut batch = EdgeBatch::new();
        for _ in 0..edits {
            if rng.next().is_multiple_of(2) {
                loop {
                    let u = rng.below(n) as VertexId;
                    let v = rng.below(n) as VertexId;
                    let key = (u.min(v), u.max(v));
                    if u != v && edges.insert(key) {
                        batch.insert(key.0, key.1);
                        break;
                    }
                }
            } else {
                let idx = rng.below(edges.len());
                let key = *edges.iter().nth(idx).expect("non-empty edge set");
                edges.remove(&key);
                batch.delete(key.0, key.1);
            }
        }
        out.push(batch);
    }
    out
}

/// Applies one delta to a running match set, asserting exact bookkeeping:
/// every removal was present, every addition absent.
fn fold(
    set: &mut BTreeSet<Vec<VertexId>>,
    added: &[Vec<VertexId>],
    removed: &[Vec<VertexId>],
    ctx: &str,
) {
    for m in removed {
        assert!(set.remove(m), "{ctx}: delta removed an absent match {m:?}");
    }
    for m in added {
        assert!(
            set.insert(m.clone()),
            "{ctx}: delta added a duplicate match {m:?}"
        );
    }
}

#[test]
fn delta_streams_compose_to_full_recompute() {
    let device = Device::new(DeviceConfig::test_small());
    for (gname, graph) in data_graphs() {
        let mut live = DynamicSession::new(&device, EngineConfig::default(), graph.clone());
        let mut sets = Vec::new();
        let mut ids = Vec::new();
        for (_, q) in queries() {
            let id = live.register(&q).expect("standing query registers");
            sets.push(live.match_set(id));
            ids.push(id);
        }
        for (b, batch) in schedule(&graph, 6, 3, 0xC0FFEE ^ gname.len() as u64)
            .iter()
            .enumerate()
        {
            let outcome = live.apply_batch(batch).expect("valid batch applies");
            assert_eq!(
                outcome.deltas.len(),
                ids.len(),
                "{gname}: one delta per standing query per batch"
            );
            for (delta, ((qname, _), set)) in
                outcome.deltas.iter().zip(queries().iter().zip(&mut sets))
            {
                let ctx = format!("{gname}/{qname}/batch{b}");
                fold(set, &delta.added, &delta.removed, &ctx);
            }
            for (i, ((qname, _), set)) in queries().iter().zip(&sets).enumerate() {
                assert_eq!(
                    set,
                    &live.recompute(ids[i]).expect("recompute succeeds"),
                    "{gname}/{qname}/batch{b}: folded deltas diverge from full recompute"
                );
                assert_eq!(
                    set,
                    &live.match_set(ids[i]),
                    "{gname}/{qname}/batch{b}: session state diverges from folded deltas"
                );
            }
        }
    }
}

#[test]
fn watch_subscription_stream_is_seamless_across_rank_loss() {
    let graph = erdos_renyi(40, 120, 11);
    let tier = ServeTier::new(
        ServeConfig::builder()
            .ranks(3)
            .lanes(1)
            .device_config(DeviceConfig::test_small())
            // Rank 0 dies before its 2nd batch, rank 1 before its 3rd:
            // the stream fails over twice and finishes on rank 2.
            .fault_plan(FaultPlan::parse("crash:0@1,crash:1@2").unwrap())
            .build()
            .expect("valid serve config"),
    );
    let mut live = tier.watch(graph.clone());
    let mut watchers = Vec::new();
    let mut sets = Vec::new();
    for (_, q) in queries() {
        let w = live.subscribe(&q).expect("subscription registers");
        sets.push(live.match_set(w.query));
        watchers.push(w);
    }

    let mut serving_ranks = BTreeSet::new();
    for (b, batch) in schedule(&graph, 4, 3, 0xFA11).iter().enumerate() {
        live.apply_batch(batch).expect("tier-wide batch applies");
        for (w, set) in watchers.iter().zip(&mut sets) {
            let updates = w.drain();
            assert_eq!(updates.len(), 1, "batch{b}: exactly one update per batch");
            for u in updates {
                serving_ranks.insert(u.rank);
                let ctx = format!("q{}/batch{}", u.delta.query.0, u.batch);
                fold(set, &u.delta.added, &u.delta.removed, &ctx);
            }
        }
    }
    assert_eq!(live.lost_ranks(), 2, "the fault plan killed two ranks");
    assert_eq!(live.primary(), Some(2), "the stream finished on rank 2");
    assert!(
        serving_ranks.len() >= 2,
        "updates must span the failover, got ranks {serving_ranks:?}"
    );
    for (w, set) in watchers.iter().zip(&sets) {
        assert_eq!(
            set,
            &live.recompute(w.query).expect("recompute succeeds"),
            "folded watcher stream diverges from full recompute after failover"
        );
    }
}
