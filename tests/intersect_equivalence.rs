//! Cross-strategy equivalence: the intersection micro-kernel (c, p, or
//! bitmap), the plan-time kernel policy, and the signature prefilter are
//! pure execution-strategy knobs — none of them may change *what* is
//! matched, only *how fast*. Every workload here must produce identical
//! match counts and identical per-level trie counts across all four
//! `--intersect` arms with the prefilter both on and off, against the
//! fixed c-intersection run as ground truth.

use cuts::graph::datasets::{Dataset, Scale};
use cuts::graph::generators::{chain, clique, cycle, erdos_renyi, mesh2d, star};
use cuts::graph::Graph;
use cuts::prelude::*;
use cuts_core::IntersectStrategy;

/// Cyclic labels, enough classes to prune but not empty the result.
fn labels(n: usize, classes: u32) -> Vec<u32> {
    (0..n as u32).map(|v| v % classes).collect()
}

fn data_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "enron-tiny",
            Dataset::Enron.generate(Scale::Custom(1.0 / 4096.0)),
        ),
        (
            "gowalla-tiny",
            Dataset::Gowalla.generate(Scale::Custom(1.0 / 4096.0)),
        ),
        ("mesh-8x8", mesh2d(8, 8)),
        ("er-60-300", erdos_renyi(60, 300, 23)),
        ("star-hub", star(48)),
        ("clique-7", clique(7)),
        (
            "er-labeled",
            erdos_renyi(50, 220, 7).with_labels(labels(50, 3)),
        ),
    ]
}

fn queries(labeled: bool) -> Vec<(&'static str, Graph)> {
    let mut qs = vec![
        ("triangle", clique(3)),
        ("k4", clique(4)),
        ("chain4", chain(4)),
        ("cycle4", cycle(4)),
    ];
    if labeled {
        qs = qs
            .into_iter()
            .map(|(n, q)| {
                let l = labels(q.num_vertices(), 3);
                (n, q.with_labels(l))
            })
            .collect();
    }
    qs
}

fn run(data: &Graph, query: &Graph, config: EngineConfig) -> MatchResult {
    let device = Device::new(DeviceConfig::test_small());
    CutsEngine::with_config(&device, config)
        .run(data, query)
        .unwrap()
}

#[test]
fn all_strategies_and_prefilter_settings_agree() {
    for (dname, data) in data_graphs() {
        for (qname, query) in queries(data.is_labeled()) {
            // Ground truth per prefilter setting: the paper's fixed
            // c-intersection. The prefilter may shrink *intermediate*
            // trie levels (pruning candidates that could never complete),
            // so level counts are compared within a prefilter setting;
            // the final match count must be invariant across everything.
            let want: Vec<MatchResult> = [false, true]
                .iter()
                .map(|&pf| {
                    run(
                        &data,
                        &query,
                        EngineConfig::default()
                            .with_intersect(IntersectStrategy::CIntersection)
                            .with_signature_prefilter(pf),
                    )
                })
                .collect();
            assert_eq!(
                want[0].num_matches, want[1].num_matches,
                "{dname}/{qname}: prefilter must never change the count"
            );
            for (on, off) in want[1].level_counts.iter().zip(&want[0].level_counts) {
                assert!(
                    on <= off,
                    "{dname}/{qname}: prefilter may only shrink levels"
                );
            }
            for strat in [
                IntersectStrategy::Auto,
                IntersectStrategy::CIntersection,
                IntersectStrategy::PIntersection,
                IntersectStrategy::Bitmap,
            ] {
                for prefilter in [false, true] {
                    let got = run(
                        &data,
                        &query,
                        EngineConfig::default()
                            .with_intersect(strat)
                            .with_signature_prefilter(prefilter),
                    );
                    let want = &want[prefilter as usize];
                    let how = format!("{strat:?}/prefilter={prefilter}");
                    assert_eq!(
                        got.num_matches, want.num_matches,
                        "{dname}/{qname}: {how} count"
                    );
                    assert_eq!(
                        got.level_counts, want.level_counts,
                        "{dname}/{qname}: {how} level counts"
                    );
                }
            }
        }
    }
}

#[test]
fn prefilter_never_prunes_on_unlabeled_regular_graphs_incorrectly() {
    // A clique query on a clique data graph: every vertex satisfies the
    // signature, so the prefilter must be a no-op on the result.
    let data = clique(6);
    let query = clique(4);
    let on = run(
        &data,
        &query,
        EngineConfig::default().with_signature_prefilter(true),
    );
    let off = run(
        &data,
        &query,
        EngineConfig::default().with_signature_prefilter(false),
    );
    assert_eq!(on.num_matches, off.num_matches);
    assert_eq!(on.level_counts, off.level_counts);
}
