//! Cross-crate integration tests: every engine (cuTS, GSI-style,
//! Gunrock-style, VF2, reference) must agree on every dataset stand-in,
//! and the paper-workload pipelines must compose.

use cuts::baseline::{vf2, GsiEngine, GunrockEngine};
use cuts::engine::reference;
use cuts::graph::generators::{chain, clique, cycle, star};
use cuts::graph::query_gen::query_set;
use cuts::prelude::*;

fn tiny_device() -> Device {
    Device::new(DeviceConfig::test_small())
}

#[test]
fn all_engines_agree_on_all_datasets() {
    for ds in Dataset::ALL {
        // Skewed stand-ins get an extra size reduction: their hubs make
        // chain-query embedding counts explode combinatorially, and the
        // sequential reference must enumerate every one.
        let scale = if ds.is_skewed() {
            1.0 / 16384.0
        } else {
            1.0 / 2048.0
        };
        let data = ds.generate(Scale::Custom(scale));
        for q in [clique(3), chain(3), cycle(4)] {
            let device = tiny_device();
            // GSI's flat storage needs a roomier budget on the skewed
            // stand-ins (its OOM behaviour is covered elsewhere; here we
            // compare counts where every engine completes).
            let roomy = Device::new(DeviceConfig::test_small().with_global_mem_words(32 << 20));
            let want = reference::count_embeddings(&data, &q);
            let cuts = CutsEngine::new(&device).run(&data, &q).unwrap().num_matches;
            assert_eq!(cuts, want, "cuts vs reference on {ds}");
            let gsi = GsiEngine::new(&roomy).run(&data, &q).unwrap().num_matches;
            assert_eq!(gsi, want, "gsi vs reference on {ds}");
            let vf2c = vf2::count(&data, &q);
            assert_eq!(vf2c, want, "vf2 vs reference on {ds}");
            if GunrockEngine::encoding_fits(data.num_vertices(), q.num_vertices()) {
                let gr = GunrockEngine::new(&roomy)
                    .run(&data, &q)
                    .unwrap()
                    .num_matches;
                assert_eq!(gr, want, "gunrock vs reference on {ds}");
            }
        }
    }
}

#[test]
fn paper_query_suite_on_enron_standin() {
    // The 5-vertex top-11 suite end-to-end against the reference.
    let data = Dataset::Enron.generate(Scale::Custom(1.0 / 2048.0));
    let device = tiny_device();
    let engine = CutsEngine::new(&device);
    for q in query_set(5, 11) {
        let want = reference::count_embeddings(&data, &q.graph);
        let got = engine.run(&data, &q.graph).unwrap().num_matches;
        assert_eq!(got, want, "{}", q.name);
    }
}

#[test]
fn distributed_equals_single_node_on_suite() {
    let data = Dataset::Gowalla.generate(Scale::Custom(1.0 / 2048.0));
    let device = tiny_device();
    let engine = CutsEngine::new(&device);
    let config = cuts::dist::DistConfig {
        device: DeviceConfig::test_small(),
        dist_chunk: 8,
        ..Default::default()
    };
    for q in query_set(4, 6) {
        let want = engine.run(&data, &q.graph).unwrap().num_matches;
        for ranks in [2usize, 3] {
            let got = cuts::dist::run(&data, &q.graph, ranks, &config)
                .unwrap()
                .total_matches;
            assert_eq!(got, want, "{} @ {ranks} ranks", q.name);
        }
    }
}

#[test]
fn chunked_and_unchunked_agree_on_standins() {
    let data = Dataset::WikiTalk.generate(Scale::Custom(1.0 / 4096.0));
    let q = clique(4);
    let roomy = tiny_device();
    let want = CutsEngine::new(&roomy).run(&data, &q).unwrap();
    // Find a budget that forces chunking but still completes.
    let need = 2 * want.level_counts.iter().sum::<u64>() as usize;
    let tight = Device::new(DeviceConfig::test_small().with_global_mem_words(need / 2));
    let got = CutsEngine::with_config(
        &tight,
        cuts::engine::EngineConfig::default().with_chunk_size(16),
    )
    .run(&data, &q)
    .unwrap();
    assert!(got.used_chunking);
    assert_eq!(got.num_matches, want.num_matches);
    assert_eq!(got.level_counts, want.level_counts);
}

#[test]
fn storage_accounting_matches_run() {
    // The MatchResult's space view must equal recomputing from counts.
    let data = Dataset::RoadNetPA.generate(Scale::Custom(1.0 / 2048.0));
    let device = tiny_device();
    let r = CutsEngine::new(&device).run(&data, &chain(4)).unwrap();
    let counts = cuts::trie::space::LevelCounts(r.level_counts.clone());
    assert_eq!(r.cuts_words(), counts.cuts_words(r.level_counts.len()));
    assert_eq!(r.naive_words(), counts.naive_words(r.level_counts.len()));
    // Depth-1 ratio is always 0.5 (PA+CA vs one word per root).
    assert!((counts.compression_ratio(1) - 0.5).abs() < 1e-12);
}

#[test]
fn enumeration_roundtrips_through_wire_format() {
    // Enumerate embeddings, ship them as a donation payload, decode, and
    // verify every edge — the full §4.2 data path without threads.
    let data = Dataset::Enron.generate(Scale::Custom(1.0 / 4096.0));
    let q = clique(3);
    let device = tiny_device();
    let mut paths = Vec::new();
    CutsEngine::new(&device)
        .run_enumerate(&data, &q, &mut |m| paths.push(m.to_vec()))
        .unwrap();
    let host = cuts::trie::HostTrie::from_flat_paths(&paths);
    let bytes = cuts::trie::serial::encode_trie(&host);
    let back = cuts::trie::serial::decode_trie(bytes).unwrap();
    let mut got = back.paths_at_level(back.levels.len() - 1);
    got.sort();
    let mut want = paths.clone();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn star_queries_and_hubs() {
    // Star queries stress the degree filter: only hubs can host the root.
    // Keep the star small: a hub of degree d hosts d!/(d-k+1)! embeddings
    // of star(k), so large k on a hubby graph is combinatorially explosive.
    let data = Dataset::RoadNetPA.generate(Scale::Custom(1.0 / 2048.0));
    let device = tiny_device();
    let engine = CutsEngine::new(&device);
    for k in [3usize, 4] {
        let q = star(k);
        let want = reference::count_embeddings(&data, &q);
        assert_eq!(
            engine.run(&data, &q).unwrap().num_matches,
            want,
            "star({k})"
        );
    }
}
