//! Dense-community search in a location-based social network — the
//! gowalla-style workload from the paper's evaluation: find all 4- and
//! 5-cliques (tightly-knit friend groups), the densest and therefore
//! hardest query graphs of Table 3.
//!
//! Also demonstrates the memory story: the same workload is run with flat
//! (GSI-style) storage and with the cuTS trie on an artificially small
//! device, showing the baseline OOM where the trie survives via hybrid
//! BFS-DFS chunking.
//!
//! ```sh
//! cargo run --release --example social_cliques
//! ```

use cuts::baseline::{CutsError, GsiEngine};
use cuts::graph::generators::clique;
use cuts::prelude::*;

fn main() {
    // gowalla-like stand-in, scaled down for an example binary.
    let social = Dataset::Gowalla.generate(Scale::Tiny);
    println!(
        "gowalla-like: {} vertices, {} arcs (max degree {})",
        social.num_vertices(),
        social.num_edges(),
        social.max_out_degree()
    );

    let device = Device::new(DeviceConfig::v100_like());
    let engine = CutsEngine::new(&device);

    for k in [3usize, 4, 5] {
        let q = clique(k);
        match engine.run(&social, &q) {
            Ok(r) => {
                let auts: u64 = (1..=k as u64).product();
                println!(
                    "K{k}: {:>12} embeddings ({:>10} distinct cliques), {:>9.2} sim-ms, chunked: {}",
                    r.num_matches,
                    r.num_matches / auts,
                    r.sim_millis,
                    r.used_chunking
                );
            }
            Err(e) => println!("K{k}: failed ({e})"),
        }
    }

    // Memory showdown on a deliberately tiny device.
    println!("\n--- memory-pressure comparison (tiny device) ---");
    let tiny = Device::new(DeviceConfig::test_small().with_global_mem_words(30_000));
    let q4 = clique(4);
    match GsiEngine::new(&tiny).run(&social, &q4) {
        Ok(r) => println!("GSI-style (flat storage): {} matches", r.num_matches),
        Err(e @ CutsError::Device(_)) => {
            println!("GSI-style (flat storage): FAILED — {e}")
        }
        Err(e) => println!("GSI-style: {e}"),
    }
    match CutsEngine::new(&tiny).run(&social, &q4) {
        Ok(r) => println!(
            "cuTS (trie + chunking):   {} matches (chunked: {})",
            r.num_matches, r.used_chunking
        ),
        Err(e) => println!("cuTS: FAILED — {e}"),
    }
}
