//! Distributed scaling demo (§4.2 / Figure 4): the same workload on 1, 2
//! and 4 simulated single-GPU nodes, with the asynchronous work-donation
//! protocol balancing load, plus the per-node runtime breakdown of
//! Figure 5.
//!
//! ```sh
//! cargo run --release --example distributed_scaling
//! ```

use cuts::dist::{run, DistConfig};
use cuts::graph::generators::clique;
use cuts::prelude::*;

fn main() {
    // enron-like communication graph (scaled down from Table 2).
    let data = Dataset::Enron.generate(Scale::Small);
    let query = clique(4);
    println!(
        "data: enron-like, {} vertices / {} arcs; query: K4\n",
        data.num_vertices(),
        data.num_edges()
    );

    let config = DistConfig {
        device: DeviceConfig::v100_like(),
        dist_chunk: 16,
        ..Default::default()
    };

    let mut single_makespan = None;
    for ranks in [1usize, 2, 4] {
        let r = run(&data, &query, ranks, &config).expect("distributed run");
        let makespan = r.makespan_sim_millis();
        let speedup = single_makespan.map(|s: f64| s / makespan).unwrap_or(1.0);
        if ranks == 1 {
            single_makespan = Some(makespan);
        }
        println!(
            "{ranks} node(s): {} matches, makespan {:.2} sim-ms, speedup {:.2}x, balance {:.2}",
            r.total_matches,
            makespan,
            speedup,
            r.balance_ratio()
        );
        for m in &r.per_rank {
            println!(
                "    T{}: {:>8.2} sim-ms busy | {:>4} jobs | {:>2} donations out / {:>2} in | {:>6} msgs",
                m.rank + 1,
                m.busy_sim_millis,
                m.jobs_processed,
                m.donations_sent,
                m.donations_received,
                m.messages_sent
            );
        }
        println!();
    }
    println!("(Figure 4 shape: ~2x at 2 nodes, ~3x at 4 nodes on big graphs;");
    println!(" Figure 5 shape: per-node busy times nearly equal.)");
}
