//! Network-motif census — the use case the paper's introduction motivates
//! (Milo et al., Science 2002: "network motifs characterize common
//! patterns in biological networks such as protein-protein interactions").
//!
//! Counts every connected 3- and 4-vertex motif in a synthetic
//! protein-interaction-style network and compares against a degree-matched
//! random rewiring, printing the over-representation ratio that defines a
//! motif.
//!
//! ```sh
//! cargo run --example motif_search
//! ```

use cuts::graph::canonical::automorphism_count;
use cuts::graph::generators::barabasi_albert;
use cuts::graph::generators::erdos_renyi;
use cuts::graph::query_gen::query_set;
use cuts::prelude::*;

fn main() {
    // "Protein interaction network": preferential attachment gives the
    // heavy-tailed degree distribution real PPI networks show.
    let ppi = barabasi_albert(400, 3, 7);
    // Null model: uniform random graph with the same size and edge budget
    // (the Milo et al. methodology uses degree-preserving rewiring; a
    // size-matched Erdős–Rényi graph is the standard simpler null).
    let null = erdos_renyi(ppi.num_vertices(), ppi.num_input_edges(), 99);

    let device = Device::new(DeviceConfig::a100_like());
    let engine = CutsEngine::new(&device);

    println!(
        "motif census: {} vertices, {} edges",
        ppi.num_vertices(),
        ppi.num_input_edges()
    );
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>8}",
        "motif", "edges", "count(real)", "count(null)", "ratio"
    );

    for n in [3usize, 4] {
        // All connected n-vertex graphs, densest first.
        let motifs = query_set(n, 16);
        for m in &motifs {
            let auts = automorphism_count(&m.graph);
            let real = engine.run(&ppi, &m.graph).expect("real run").num_matches / auts;
            let nullc = engine.run(&null, &m.graph).expect("null run").num_matches / auts;
            let ratio = if nullc == 0 {
                f64::INFINITY
            } else {
                real as f64 / nullc as f64
            };
            println!(
                "{:<10} {:>6} {:>14} {:>14} {:>8.2}",
                m.name, m.num_edges, real, nullc, ratio
            );
        }
    }
    println!("\nratio >> 1 marks an over-represented subgraph: a network motif.");
}
