//! Quickstart: count and list triangles in a small social-style graph.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cuts::graph::generators::{clique, erdos_renyi};
use cuts::prelude::*;

fn main() {
    // A data graph: 200 people, ~800 friendships, plus one tight clique.
    let social = erdos_renyi(200, 800, 42);
    println!(
        "data graph: {} vertices, {} undirected edges",
        social.num_vertices(),
        social.num_input_edges()
    );

    // The query: a triangle.
    let triangle = clique(3);

    // A simulated device (paper-shaped: V100). The engine allocates its
    // PA/CA trie from the device's free memory, exactly like the paper.
    let device = Device::new(DeviceConfig::v100_like());
    let engine = CutsEngine::new(&device);

    let result = engine.run(&social, &triangle).expect("run failed");
    println!(
        "triangle embeddings: {} (each triangle counted once per automorphism: 6)",
        result.num_matches
    );
    println!("distinct triangles:  {}", result.num_matches / 6);
    println!("matching order:      {:?}", result.order);
    println!("partial paths/depth: {:?}", result.level_counts);
    println!(
        "trie storage: {} words (naive flat storage would need {})",
        result.cuts_words(),
        result.naive_words()
    );
    println!(
        "hardware counters: {} DRAM reads, {} atomics, {} instructions",
        result.counters.dram_reads, result.counters.atomics, result.counters.instructions
    );
    println!("simulated kernel time: {:.3} ms", result.sim_millis);

    // Enumerate a few concrete matches.
    println!("\nfirst five embeddings (query vertex -> data vertex):");
    let mut shown = 0;
    engine
        .run_enumerate(&social, &triangle, &mut |m| {
            if shown < 5 {
                println!("  q0->{} q1->{} q2->{}", m[0], m[1], m[2]);
                shown += 1;
            }
        })
        .expect("enumeration failed");
}
