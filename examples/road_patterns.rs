//! Pattern search on road networks — the workload where the paper's
//! speedups are largest (geomean 329-430× on roadNet-PA/TX/CA): long
//! chains and cycles in a near-regular, low-degree planar-ish graph.
//!
//! Also exercises the Gunrock-style baseline: road networks have enough
//! vertices that its 64-bit path encoding starts refusing longer queries,
//! reproducing the paper's §3 scalability argument.
//!
//! ```sh
//! cargo run --release --example road_patterns
//! ```

use cuts::baseline::{CutsError, GunrockEngine};
use cuts::graph::generators::{chain, cycle};
use cuts::prelude::*;

fn main() {
    let road = Dataset::RoadNetCA.generate(Scale::Small);
    println!(
        "roadNet-CA-like: {} vertices, {} arcs, max degree {}\n",
        road.num_vertices(),
        road.num_edges(),
        road.max_out_degree()
    );

    let device = Device::new(DeviceConfig::v100_like());
    let engine = CutsEngine::new(&device);

    println!(
        "{:<12} {:>14} {:>10} {:>12}",
        "pattern", "embeddings", "sim ms", "trie words"
    );
    for (name, q) in [
        ("chain-4", chain(4)),
        ("chain-6", chain(6)),
        ("chain-8", chain(8)),
        ("cycle-4", cycle(4)),
        ("cycle-6", cycle(6)),
    ] {
        match engine.run(&road, &q) {
            Ok(r) => println!(
                "{:<12} {:>14} {:>10.3} {:>12}",
                name,
                r.num_matches,
                r.sim_millis,
                r.cuts_words()
            ),
            Err(e) => println!("{name:<12} failed: {e}"),
        }
    }

    // Gunrock's encoding wall: |V|^|Q| must stay below 2^64.
    println!(
        "\nGunrock-style encoding limit on this graph ({} vertices):",
        road.num_vertices()
    );
    let gunrock = GunrockEngine::new(&device);
    for k in [3usize, 4, 5, 6] {
        let q = chain(k);
        match gunrock.run(&road, &q) {
            Ok(r) => println!("  chain-{k}: ok, {} matches", r.num_matches),
            Err(CutsError::Unsupported { .. }) => {
                println!("  chain-{k}: UNSUPPORTED (encoding overflow)")
            }
            Err(e) => println!("  chain-{k}: failed ({e})"),
        }
    }
    println!("\ncuTS has no such limit: the trie addresses paths by parent links,");
    println!("so query size is bounded only by memory — the paper's §3 claim.");
}
