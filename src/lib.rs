#![warn(missing_docs)]

//! # cuts — trie-based subgraph isomorphism, distributed, on a simulated GPU
//!
//! Facade crate re-exporting the whole cuTS reproduction workspace:
//!
//! * [`graph`] — CSR graphs, dataset generators, query-set enumeration.
//! * [`gpu`] — the simulated GPU substrate (devices, counters, memory).
//! * [`trie`] — the PA/CA trie, CSF and naive representations.
//! * [`engine`] — the cuTS matching engine.
//! * [`baseline`] — GSI-style / Gunrock-style / CPU baselines.
//! * [`dist`] — the distributed runtime and Algorithm-3 scheduler.
//!
//! ```
//! use cuts::prelude::*;
//!
//! let data = cuts::graph::generators::mesh2d(4, 4);
//! let query = cuts::graph::generators::chain(3);
//! let device = Device::new(DeviceConfig::test_small());
//! let session = ExecSession::new(&device, EngineConfig::default());
//! let result = session.run(&data, &query).unwrap();
//! assert!(result.num_matches > 0);
//! // Warm runs reuse the cached plan and the arena-chained trie slabs.
//! session.run(&data, &query).unwrap();
//! assert_eq!(session.stats().plans.hits, 1);
//! ```

pub use cuts_baseline as baseline;
pub use cuts_core as engine;
pub use cuts_dist as dist;
pub use cuts_gpu_sim as gpu;
pub use cuts_graph as graph;
pub use cuts_trie as trie;

/// Most-used types in one import.
pub mod prelude {
    pub use cuts_core::prelude::*;
    pub use cuts_core::SessionStats;
    pub use cuts_gpu_sim::{Device, DeviceConfig};
    pub use cuts_graph::{Dataset, Graph, GraphBuilder, Scale};
}
